package device

import (
	"math"
	"testing"
)

func wl1080p(sa, usable, numRF int) Workload {
	return Workload{MBW: 120, MBH: 68, SA: sa, NumRF: numRF, UsableRF: usable}
}

// singleDeviceFrameTime approximates the sequential frame time of one
// device: all rows of ME+INT+SME plus the R* group, no overlap.
func singleDeviceFrameTime(p Profile, w Workload) float64 {
	rows := float64(w.Rows())
	return rows*(p.KME(w)+p.KINT(w)+p.KSME(w)) + p.TRStar(w)
}

func TestCalibrationMatchesFig6SingleDevice(t *testing.T) {
	w := wl1080p(32, 1, 1)
	cases := []struct {
		name string
		t    float64 // frame time
		want float64 // fps target from Fig. 6(a) at SA 32, 1 RF
		tol  float64
	}{
		// The Fig. 6 anchoring lives in the base (pre-restructuring)
		// profiles; the shipped constructors are these divided by the
		// measured kernel speedups.
		{"CPU_N", singleDeviceFrameTime(baseCPUNehalemCore(), w) / 4, 12.3, 1.0}, // 4 cores
		{"CPU_H", singleDeviceFrameTime(baseCPUHaswellCore(), w) / 4, 20.9, 1.5},
		{"GPU_F", singleDeviceFrameTime(baseGPUFermi(), w), 29.1, 1.5},
		{"GPU_K", singleDeviceFrameTime(baseGPUKepler(), w), 58.2, 3.0},
	}
	for _, c := range cases {
		fps := 1 / c.t
		if math.Abs(fps-c.want) > c.tol {
			t.Errorf("%s: %.1f fps, want %.1f±%.1f", c.name, fps, c.want, c.tol)
		}
	}
}

func TestCalibratedProfilesScaleFromBase(t *testing.T) {
	w := wl1080p(32, 1, 1)
	cal := DefaultCalibration()
	if err := cal.Validate(); err != nil {
		t.Fatal(err)
	}
	// The shipped profiles must be exactly base/calibration per kernel,
	// and strictly faster overall.
	pairs := []struct {
		name       string
		base, ship Profile
	}{
		{"CPU_N", baseCPUNehalemCore(), CPUNehalemCore()},
		{"CPU_H", baseCPUHaswellCore(), CPUHaswellCore()},
		{"GPU_F", baseGPUFermi(), GPUFermi()},
		{"GPU_K", baseGPUKepler(), GPUKepler()},
	}
	for _, p := range pairs {
		if got := p.base.MECandSec / p.ship.MECandSec; math.Abs(got-cal.ME) > 1e-9 {
			t.Errorf("%s: ME speedup %v, want %v", p.name, got, cal.ME)
		}
		if got := p.base.SMESec / p.ship.SMESec; math.Abs(got-cal.SME) > 1e-9 {
			t.Errorf("%s: SME speedup %v, want %v", p.name, got, cal.SME)
		}
		if got := p.base.INTSec / p.ship.INTSec; math.Abs(got-cal.INT) > 1e-9 {
			t.Errorf("%s: INT speedup %v, want %v", p.name, got, cal.INT)
		}
		if got := p.base.RStarSec / p.ship.RStarSec; math.Abs(got-cal.RStar) > 1e-9 {
			t.Errorf("%s: R* speedup %v, want %v", p.name, got, cal.RStar)
		}
		if singleDeviceFrameTime(p.ship, w) >= singleDeviceFrameTime(p.base, w) {
			t.Errorf("%s: calibrated profile not faster than base", p.name)
		}
	}
}

func TestRelativeDeviceSpeeds(t *testing.T) {
	w := wl1080p(32, 1, 1)
	// Paper: CPU_H ≈ 1.7× CPU_N; GPU_K ≈ 2× GPU_F.
	rCPU := singleDeviceFrameTime(CPUNehalemCore(), w) / singleDeviceFrameTime(CPUHaswellCore(), w)
	if math.Abs(rCPU-1.7) > 0.05 {
		t.Errorf("CPU_H/CPU_N speed ratio %.2f, want ≈1.7", rCPU)
	}
	rGPU := singleDeviceFrameTime(GPUFermi(), w) / singleDeviceFrameTime(GPUKepler(), w)
	if math.Abs(rGPU-2.0) > 0.05 {
		t.Errorf("GPU_K/GPU_F speed ratio %.2f, want ≈2", rGPU)
	}
}

func TestMEScalesQuadraticallyWithSA(t *testing.T) {
	p := GPUKepler()
	k32 := p.KME(wl1080p(32, 1, 1))
	k64 := p.KME(wl1080p(64, 1, 1))
	if math.Abs(k64/k32-4) > 1e-9 {
		t.Fatalf("ME load ratio %v between SA 64 and 32, want 4 (Fig. 6a)", k64/k32)
	}
}

func TestMESMEScaleWithRF(t *testing.T) {
	p := GPUFermi()
	w1, w3 := wl1080p(32, 1, 4), wl1080p(32, 3, 4)
	if math.Abs(p.KME(w3)/p.KME(w1)-3) > 1e-9 {
		t.Fatal("ME must scale linearly with usable RFs")
	}
	if math.Abs(p.KSME(w3)/p.KSME(w1)-3) > 1e-9 {
		t.Fatal("SME must scale linearly with usable RFs")
	}
	if p.KINT(w3) != p.KINT(w1) {
		t.Fatal("INT is RF-independent (one new reference per frame)")
	}
	if p.KRStar(w3) != p.KRStar(w1) {
		t.Fatal("R* is RF-independent")
	}
}

func TestTransferModel(t *testing.T) {
	g := GPUFermi()
	if g.TH2D(0) != 0 || g.TD2H(0) != 0 {
		t.Fatal("zero-byte transfers must be free")
	}
	// 6 MB at 6 GB/s + 8 µs latency ≈ 1.008 ms.
	got := g.TH2D(6_000_000)
	if math.Abs(got-1.008e-3) > 1e-6 {
		t.Fatalf("TH2D = %v", got)
	}
	if g.TD2H(6_000_000) <= got {
		t.Fatal("D2H must be slower than H2D (asymmetric link)")
	}
	c := CPUNehalemCore()
	if c.TH2D(1000) != 0 || c.TD2H(1000) != 0 {
		t.Fatal("CPU cores transfer nothing")
	}
}

func TestRowVolumes(t *testing.T) {
	w := wl1080p(32, 2, 4)
	if w.CFRowBytes() != 16*1920*3/2 {
		t.Fatalf("CF row = %d", w.CFRowBytes())
	}
	if w.SFRowBytes() != 16*16*1920 {
		t.Fatalf("SF row = %d", w.SFRowBytes())
	}
	if w.MVRowBytes() != 120*41*4*2 {
		t.Fatalf("MV row = %d", w.MVRowBytes())
	}
	if w.RFRowBytes() != w.CFRowBytes() {
		t.Fatal("RF row must match CF row")
	}
	if w.Candidates() != 1024 {
		t.Fatalf("candidates = %d", w.Candidates())
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	p := GPUKepler()
	seen := map[float64]bool{}
	for frame := 0; frame < 50; frame++ {
		f1 := p.JitterFactor(7, frame, 0, 1)
		f2 := p.JitterFactor(7, frame, 0, 1)
		if f1 != f2 {
			t.Fatal("jitter is not deterministic")
		}
		if f1 < 1-p.Jitter || f1 > 1+p.Jitter {
			t.Fatalf("jitter %v outside [%v,%v]", f1, 1-p.Jitter, 1+p.Jitter)
		}
		seen[f1] = true
	}
	if len(seen) < 10 {
		t.Fatal("jitter looks constant across frames")
	}
	p.Jitter = 0
	if p.JitterFactor(7, 3, 0, 1) != 1 {
		t.Fatal("zero jitter must return exactly 1")
	}
}

func TestPlatformIndexing(t *testing.T) {
	pl := SysNFF()
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.NumGPUs() != 2 || pl.NumDevices() != 6 {
		t.Fatalf("NumGPUs %d NumDevices %d", pl.NumGPUs(), pl.NumDevices())
	}
	if !pl.IsGPU(0) || !pl.IsGPU(1) || pl.IsGPU(2) {
		t.Fatal("GPU/CPU boundary wrong")
	}
	if pl.Dev(0).Name != "GPU_F" || pl.Dev(2).Name != "CPU_N-core" {
		t.Fatal("device order wrong")
	}
}

func TestStandardPlatformsValid(t *testing.T) {
	for _, pl := range []*Platform{
		SysNF(), SysNFF(), SysHK(),
		CPUOnly("CPU_N", CPUNehalemCore(), 4),
		CPUOnly("CPU_H", CPUHaswellCore(), 4),
		GPUOnly("GPU_F", GPUFermi()),
		GPUOnly("GPU_K", GPUKepler()),
	} {
		if err := pl.Validate(); err != nil {
			t.Errorf("%s: %v", pl.Name, err)
		}
	}
}

func TestPlatformValidateRejects(t *testing.T) {
	bad := []*Platform{
		{Name: "empty"},
		{Name: "gpu-as-cpu", GPUs: []Profile{CPUNehalemCore()}},
		{Name: "cpu-as-gpu", CPUCore: GPUFermi(), Cores: 2},
		{Name: "neg-cores", CPUCore: CPUNehalemCore(), Cores: -1},
	}
	for _, pl := range bad {
		if err := pl.Validate(); err == nil {
			t.Errorf("%s: expected validation error", pl.Name)
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	p := GPUFermi()
	p.CopyEngines = 3
	if p.Validate() == nil {
		t.Error("3 copy engines accepted")
	}
	q := CPUNehalemCore()
	q.CopyEngines = 1
	if q.Validate() == nil {
		t.Error("CPU with copy engine accepted")
	}
	r := GPUFermi()
	r.MECandSec = 0
	if r.Validate() == nil {
		t.Error("zero kernel coefficient accepted")
	}
	s := GPUFermi()
	s.Name = ""
	if s.Validate() == nil {
		t.Error("unnamed profile accepted")
	}
}

func TestEffectiveFactorAppliesPerturbation(t *testing.T) {
	pl := SysHK()
	base := pl.EffectiveFactor(5, 0, 0)
	pl.Perturb = func(frame, dev int) float64 {
		if frame == 5 && dev == 0 {
			return 2
		}
		return 1
	}
	perturbed := pl.EffectiveFactor(5, 0, 0)
	if math.Abs(perturbed/base-2) > 1e-12 {
		t.Fatalf("perturbation factor %v, want 2", perturbed/base)
	}
	if pl.EffectiveFactor(6, 0, 0) != pl.Dev(0).JitterFactor(pl.Seed, 6, 0, 0) {
		t.Fatal("unperturbed frame must equal pure jitter")
	}
}

func TestScaledAndWithCopyEngines(t *testing.T) {
	p := GPUFermi().Scaled(0.5, "GPU_X")
	if p.Name != "GPU_X" || math.Abs(p.MECandSec/GPUFermi().MECandSec-0.5) > 1e-12 {
		t.Fatal("Scaled wrong")
	}
	q := GPUKepler().WithCopyEngines(2)
	if q.CopyEngines != 2 || q.Name == GPUKepler().Name {
		t.Fatal("WithCopyEngines wrong")
	}
}

func TestWorkloadValidate(t *testing.T) {
	if (Workload{MBW: 10, MBH: 5, SA: 32, NumRF: 2, UsableRF: 1}).Validate() != nil {
		t.Fatal("valid workload rejected")
	}
	bad := []Workload{
		{MBW: 0, MBH: 5, SA: 32, NumRF: 1, UsableRF: 1},
		{MBW: 10, MBH: 5, SA: 31, NumRF: 1, UsableRF: 1},
		{MBW: 10, MBH: 5, SA: 32, NumRF: 1, UsableRF: 2},
		{MBW: 10, MBH: 5, SA: 32, NumRF: 0, UsableRF: 0},
	}
	for i, w := range bad {
		if w.Validate() == nil {
			t.Errorf("workload %d accepted", i)
		}
	}
}

func TestGPUTeslaProfile(t *testing.T) {
	p := GPUTesla()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := wl1080p(32, 1, 1)
	rt := singleDeviceFrameTime(p, w) / singleDeviceFrameTime(GPUFermi(), w)
	if math.Abs(rt-2.2) > 0.05 {
		t.Fatalf("Tesla/Fermi time ratio %.2f, want ≈2.2", rt)
	}
	if p.H2DBytesPerSec >= GPUFermi().H2DBytesPerSec {
		t.Fatal("Tesla link should be narrower than Fermi's")
	}
}

func TestSubplatform(t *testing.T) {
	base := SysNFF() // 2 GPUs + 4 cores
	sub, err := base.Subplatform("lease-a", []int{5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumGPUs() != 1 || sub.Cores != 2 || sub.NumDevices() != 3 {
		t.Fatalf("subplatform shape: %d GPUs, %d cores", sub.NumGPUs(), sub.Cores)
	}
	want := []int{1, 2, 5}
	for i, b := range want {
		if sub.BaseIndex[i] != b {
			t.Fatalf("BaseIndex = %v, want %v", sub.BaseIndex, want)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}

	// A leased device keeps its parent jitter identity: subplatform device 0
	// (parent GPU 1) must reproduce the parent's factor for device 1.
	for frame := 1; frame <= 5; frame++ {
		for mod := 0; mod < 4; mod++ {
			if got, wantF := sub.EffectiveFactor(frame, 0, mod), base.EffectiveFactor(frame, 1, mod); got != wantF {
				t.Fatalf("frame %d mod %d: leased factor %v, parent factor %v", frame, mod, got, wantF)
			}
		}
	}

	// Perturbations installed on the parent follow the lease.
	base.Perturb = func(frame, dev int) float64 {
		if dev == 1 {
			return 3
		}
		return 1
	}
	sub2, err := base.Subplatform("lease-b", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if got, wantF := sub2.EffectiveFactor(2, 0, 0), base.EffectiveFactor(2, 1, 0); got != wantF {
		t.Fatalf("perturbed leased factor %v, parent %v", got, wantF)
	}
}

func TestSubplatformRejectsBadSubsets(t *testing.T) {
	base := SysNF()
	for name, devs := range map[string][]int{
		"empty":     {},
		"dup":       {0, 0},
		"range-neg": {-1},
		"range-hi":  {5},
	} {
		if _, err := base.Subplatform(name, devs); err == nil {
			t.Errorf("%s subset accepted", name)
		}
	}
}
