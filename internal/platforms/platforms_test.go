package platforms

import "testing"

func TestLookupAllNamesValid(t *testing.T) {
	for _, name := range Names() {
		pl, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("%s: invalid platform: %v", name, err)
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	a, err := Lookup("SysHK")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "SysHK" {
		t.Fatalf("got %s", a.Name)
	}
}

func TestLookupReturnsFreshInstances(t *testing.T) {
	a, _ := Lookup("syshk")
	b, _ := Lookup("syshk")
	if a == b {
		t.Fatal("Lookup must not share platform instances (perturbation state)")
	}
	a.Perturb = func(int, int) float64 { return 2 }
	if b.Perturb != nil {
		t.Fatal("perturbation leaked between instances")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("cray"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("%d names registered: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("names not sorted")
		}
	}
}
