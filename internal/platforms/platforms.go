// Package platforms is the name registry of simulated platform
// configurations shared by the command-line tools: the paper's four
// single-device baselines, its three heterogeneous systems, and a couple
// of extras built from the extended device library.
package platforms

import (
	"fmt"
	"sort"
	"strings"

	"feves/internal/device"
)

// builders maps canonical names to fresh-platform constructors. Platforms
// carry mutable perturbation state, so every lookup builds a new instance.
var builders = map[string]func() *device.Platform{
	"syshk":  device.SysHK,
	"sysnf":  device.SysNF,
	"sysnff": device.SysNFF,
	"cpun":   func() *device.Platform { return device.CPUOnly("CPU_N", device.CPUNehalemCore(), 4) },
	"cpuh":   func() *device.Platform { return device.CPUOnly("CPU_H", device.CPUHaswellCore(), 4) },
	"gpuf":   func() *device.Platform { return device.GPUOnly("GPU_F", device.GPUFermi()) },
	"gpuk":   func() *device.Platform { return device.GPUOnly("GPU_K", device.GPUKepler()) },
	"gput":   func() *device.Platform { return device.GPUOnly("GPU_T", device.GPUTesla()) },
	// SysNT: an older-generation hybrid (Nehalem + Tesla) for exploring
	// how the framework behaves when the GPU barely beats the CPU.
	"sysnt": func() *device.Platform {
		return &device.Platform{Name: "SysNT", GPUs: []device.Profile{device.GPUTesla()},
			CPUCore: device.CPUNehalemCore(), Cores: 4, Seed: 1}
	},
	// SysNFK: CPU_N's quad-core paired with both discrete GPUs — the
	// serving experiments' pool platform (6 devices, two fast GPUs to
	// lease out plus four cores to split among tenants).
	"sysnfk": func() *device.Platform {
		return &device.Platform{Name: "SysNFK",
			GPUs:    []device.Profile{device.GPUFermi(), device.GPUKepler()},
			CPUCore: device.CPUNehalemCore(), Cores: 4, Seed: 1}
	},
}

// Lookup returns a fresh instance of the named platform (names are
// case-insensitive).
func Lookup(name string) (*device.Platform, error) {
	b, ok := builders[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("platforms: unknown platform %q (available: %s)",
			name, strings.Join(Names(), " "))
	}
	return b(), nil
}

// Names lists the registered platform names in sorted order.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
