// Package vcm implements the Video Coding Manager and Data Access
// Management blocks of the FEVES framework (§III-B of the paper): given a
// frame's workload distribution it builds the cross-device schedule of
// kernel invocations and host↔device transfers shown in Fig. 4/5 —
// including the single- vs dual-copy-engine overlap semantics, the
// data-reuse Δ transfers, and the deferred SF completion (σ/σʳ) — executes
// it on the discrete-event simulator, measures the synchronization points
// τ1, τ2 and τtot, and feeds the measured execution and transfer times back
// into the Performance Characterization.
//
// In Functional mode every kernel task additionally carries the real
// encoding work (the codec package's row-sliced module calls), so the
// simulated schedule drives a genuine, bit-exact collaborative encode.
package vcm

import (
	"errors"
	"fmt"
	"sync"

	"feves/internal/check"
	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/h264/rd"
	"feves/internal/sched"
	"feves/internal/simclock"
	"feves/internal/telemetry"
)

// Mode selects whether kernels actually compute.
type Mode int

const (
	// TimingOnly skips the functional kernels: only the virtual-time
	// schedule runs. Because FSBM workloads are content-independent (the
	// paper's own observation), timings are unaffected; this mode makes
	// 1080p parameter sweeps cheap.
	TimingOnly Mode = iota
	// Functional runs the real row-sliced encoder kernels inside the
	// simulated schedule, producing a real bitstream and reconstruction.
	Functional
)

// FrameTiming reports one inter-frame's simulated execution.
type FrameTiming struct {
	Frame    int // 1-based inter-frame index
	Tau1     float64
	Tau2     float64
	Tot      float64
	RStarDev int
	// Chain is the reference chain the frame predicted from (always 0 on
	// the single-chain serial path).
	Chain int
	// PairMakespan is the joint makespan of the two-frame schedule this
	// frame was part of (zero on the serial path): the frame-parallel
	// throughput is 2 frames per PairMakespan seconds.
	PairMakespan float64
	// Module kernel-time totals summed over devices (seconds of device
	// time, not wall time), used by the module-share experiment.
	ModuleTime [4]float64
	// Stats holds the functional encoding result (zero in TimingOnly mode).
	Stats rd.FrameStats
	// Spans lists every executed task (kernels, transfers, barriers) for
	// Gantt-style inspection of the Fig. 4 schedule. The slice aliases
	// storage the Manager reuses: it is valid until the next
	// EncodeInterFrame call on the same Manager; copy to keep it longer.
	Spans []TaskSpan
}

// TaskSpan records one executed schedule task.
type TaskSpan struct {
	Resource string
	Label    string
	Start    float64
	End      float64
}

// FPS returns the frame rate implied by the total inter-loop time.
func (t FrameTiming) FPS() float64 {
	if t.Tot <= 0 {
		return 0
	}
	return 1 / t.Tot
}

// Manager orchestrates collaborative inter-frame encoding on a platform.
type Manager struct {
	Platform *device.Platform
	Mode     Mode
	// Enc is the functional encoder; required in Functional mode.
	Enc *codec.Encoder
	// Parallel executes the functional kernels of independent row ranges
	// concurrently (one goroutine per assigned range), exploiting host
	// cores while preserving bit-exact output: ME/INT ranges are disjoint
	// writers, SME starts only after the τ1 assembly, and R* is exclusive.
	Parallel bool
	// Telemetry receives every frame's executed schedule spans for the
	// whole-run Perfetto timeline; nil disables the hook.
	Telemetry *telemetry.Telemetry
	// Check runs the internal/check schedule validator on every executed
	// frame: the Algorithm-2 distribution invariants, the data-access
	// consistency rules and the τ1/τ2/τtot dependency ordering of the
	// executed timeline. A violation fails the frame with a check.Error.
	// Off by default; the cost when on is O(spans²) per frame.
	Check bool
	// CheckObserve softens Check for the serving path: instead of failing
	// the frame, violations are counted into the Telemetry sink's
	// feves_check_violations_total counter (per rule) and the frame
	// proceeds — a tenant's bad schedule becomes an alert, not an outage.
	CheckObserve bool
	// Down marks devices excluded by the health tracker: no tasks at all
	// (kernels or transfers, including the RF broadcast that otherwise
	// reaches every accelerator) are scheduled for them. The distribution
	// must assign such devices zero rows.
	Down []bool
	// Deadline, when non-nil, enforces per-sync-point budgets on every
	// frame: a breach aborts the frame *before* the functional kernels
	// run, so the core layer can retry it bit-exactly on a reduced
	// topology. Nil preserves the original never-fail behaviour.
	Deadline *Deadline
	// Attempt is the current retry attempt of the frame being executed
	// (0 = first try); the core layer sets it before each run so trace
	// slices and the flight recorder carry the causal attempt index.
	Attempt int

	// pairScr holds the two in-flight frames' retained build state for
	// EncodeInterFramePair, mirroring the serial scratch below.
	pairScr [2]pairScratch

	// Per-frame scratch, retained across EncodeInterFrame calls so the
	// steady-state frame loop allocates nothing: the discrete-event
	// simulator (task free-list included), the per-device resources and
	// precomputed task labels (rebuilt only when Platform changes), and
	// every work slice the schedule build fills.
	sim  *simclock.Sim
	host *simclock.Resource
	// hostB is the second frame's barrier resource in pair mode: τ barriers
	// are zero-duration FIFO tasks, so the two in-flight frames need
	// disjoint barrier queues or one frame's τ2 would head-of-line block
	// behind the other's τ1.
	hostB    *simclock.Resource
	res      []devResources
	builtFor *device.Platform
	modLabel [4][]string // [Module][dev] "ME@3"
	trLabel  [7][]string // [Transfer][dev] "SF.h2d@3"
	zeroSR   []int
	offM     []int
	offL     []int
	offS     []int
	obsBuf   []obsRec
	maxFac   []float64
	maxDur   []float64
	tau1Deps []*simclock.Task
	tau2Deps []*simclock.Task
	spans    []TaskSpan
	chkSpans []check.Span
	telSpans []telemetry.Span
}

// obsRec is one schedule task pending a Performance Characterization
// observation after the simulation runs.
type obsRec struct {
	dev  int
	mod  sched.Module
	tr   sched.Transfer
	isTr bool
	rows int
	task *simclock.Task
}

// ensureSim (re)builds the simulator, device resources and label tables
// when the platform changed, and otherwise just rewinds the retained
// simulator to time zero. Health exclusions (Down) do not affect the
// resource set, so pool churn on a fixed lease stays allocation-free.
func (m *Manager) ensureSim() {
	pl := m.Platform
	if m.sim != nil && m.builtFor == pl {
		m.sim.Reset(0)
		return
	}
	nDev := pl.NumDevices()
	m.sim = simclock.New(0)
	m.host = m.sim.NewResource("host")
	m.hostB = m.sim.NewResource("host.b")
	m.res = make([]devResources, nDev)
	for i := 0; i < nDev; i++ {
		p := pl.Dev(i)
		r := devResources{compute: m.sim.NewResource(fmt.Sprintf("%s#%d.compute", p.Name, i))}
		if p.Class == device.GPU {
			ce := m.sim.NewResource(fmt.Sprintf("%s#%d.ce0", p.Name, i))
			r.ceH2D, r.ceD2H = ce, ce
			if p.CopyEngines == 2 {
				r.ceD2H = m.sim.NewResource(fmt.Sprintf("%s#%d.ce1", p.Name, i))
			}
		}
		m.res[i] = r
	}
	for mod := range m.modLabel {
		m.modLabel[mod] = make([]string, nDev)
		for i := 0; i < nDev; i++ {
			m.modLabel[mod][i] = fmt.Sprintf("%s@%d", sched.Module(mod), i)
		}
	}
	for tr := range m.trLabel {
		m.trLabel[tr] = make([]string, nDev)
		for i := 0; i < nDev; i++ {
			m.trLabel[tr][i] = fmt.Sprintf("%s@%d", sched.Transfer(tr), i)
		}
	}
	m.zeroSR = make([]int, nDev)
	m.builtFor = pl
}

// isDown reports whether device i is excluded from scheduling.
func (m *Manager) isDown(i int) bool { return m.Down != nil && i < len(m.Down) && m.Down[i] }

// framePayloads collects the functional work of one frame, organized by
// the synchronization structure of Fig. 4: everything before τ1 (ME and
// INT row ranges), the τ1 host assembly, the SME ranges, and R*.
type framePayloads struct {
	wave1       []func() // ME and INT row slices
	completeINT func()
	wave2       []func() // SME row slices
	rstar       func() rd.FrameStats
}

// run executes the payloads honouring the dependency structure; within a
// wave the slices touch disjoint rows, so they may run concurrently.
func (p *framePayloads) run(parallel bool) rd.FrameStats {
	runWave := func(fns []func()) {
		if !parallel || len(fns) < 2 {
			for _, fn := range fns {
				fn()
			}
			return
		}
		var wg sync.WaitGroup
		for _, fn := range fns {
			wg.Add(1)
			go func(fn func()) {
				defer wg.Done()
				fn()
			}(fn)
		}
		wg.Wait()
	}
	runWave(p.wave1)
	if p.completeINT != nil {
		p.completeINT()
	}
	runWave(p.wave2)
	if p.rstar != nil {
		return p.rstar()
	}
	return rd.FrameStats{}
}

// devResources holds the simulator resources of one device.
type devResources struct {
	compute *simclock.Resource
	ceH2D   *simclock.Resource // nil for CPU cores
	ceD2H   *simclock.Resource // == ceH2D for single-copy-engine GPUs
}

// beginFunctionalFrame validates the functional-mode inputs and opens the
// encoder's frame job; in timing-only mode it returns nil without error.
func (m *Manager) beginFunctionalFrame(w device.Workload, cf *h264.Frame) (*codec.FrameJob, error) {
	if m.Mode != Functional {
		return nil, nil
	}
	if m.Enc == nil || cf == nil {
		return nil, fmt.Errorf("vcm: functional mode needs an encoder and a frame")
	}
	if cf.MBHeight() != w.Rows() || cf.MBWidth() != w.MBW {
		return nil, fmt.Errorf("vcm: frame is %dx%d MBs but workload says %dx%d",
			cf.MBWidth(), cf.MBHeight(), w.MBW, w.MBH)
	}
	return m.Enc.BeginFrame(cf), nil
}

// EncodeInterFrame simulates one inter-frame under distribution d and
// returns the measured timing, updating pm with every observed kernel and
// transfer time. In Functional mode cf is encoded for real through the
// manager's Encoder. prevSigmaR is the σʳ vector of the previous frame.
func (m *Manager) EncodeInterFrame(frame int, w device.Workload, d sched.Distribution,
	pm *sched.PerfModel, prevSigmaR []int, cf *h264.Frame) (FrameTiming, error) {

	pl := m.Platform
	nDev := pl.NumDevices()
	if err := w.Validate(); err != nil {
		return FrameTiming{}, err
	}
	if err := d.Validate(w.Rows()); err != nil {
		return FrameTiming{}, err
	}
	if len(d.M) != nDev {
		return FrameTiming{}, fmt.Errorf("vcm: distribution for %d devices on %d-device platform", len(d.M), nDev)
	}
	m.ensureSim()
	if prevSigmaR == nil {
		prevSigmaR = m.zeroSR
	}
	for i := 0; i < nDev; i++ {
		if m.isDown(i) && (d.M[i] != 0 || d.L[i] != 0 || d.S[i] != 0) {
			return FrameTiming{}, fmt.Errorf("vcm: distribution assigns rows to excluded device %d", i)
		}
	}
	if m.isDown(d.RStarDev) {
		return FrameTiming{}, fmt.Errorf("vcm: R* placed on excluded device %d", d.RStarDev)
	}
	// job must be assigned exactly once at its declaration: the payload
	// closures capture it, and a variable reassigned after declaration is
	// captured by reference — heap-allocating its cell on every call, even
	// in timing-only mode where no closure is ever created.
	job, err := m.beginFunctionalFrame(w, cf)
	if err != nil {
		return FrameTiming{}, err
	}
	var payloads framePayloads

	sim := m.sim
	host := m.host
	res := m.res

	m.offM = sched.OffsetsInto(m.offM, d.M)
	m.offL = sched.OffsetsInto(m.offL, d.L)
	m.offS = sched.OffsetsInto(m.offS, d.S)
	offM, offL, offS := m.offM, m.offL, m.offS
	rows := w.Rows()
	rstar := d.RStarDev

	m.obsBuf = m.obsBuf[:0]
	// maxFac/maxDur collect per-device blame evidence for the deadline
	// check: the worst kernel slowdown factor and the longest kernel.
	m.maxFac = growFloats(m.maxFac, nDev)
	m.maxDur = growFloats(m.maxDur, nDev)
	maxFac, maxDur := m.maxFac, m.maxDur
	for i := range maxFac {
		maxFac[i], maxDur[i] = 0, 0
	}
	kernel := func(i int, mod sched.Module, nRows int, deps ...*simclock.Task) *simclock.Task {
		if nRows == 0 || m.isDown(i) {
			return nil
		}
		p := pl.Dev(i)
		var per float64
		switch mod {
		case sched.ModME:
			per = p.KME(w)
		case sched.ModINT:
			per = p.KINT(w)
		case sched.ModSME:
			per = p.KSME(w)
		case sched.ModRStar:
			per = p.KRStar(w)
		}
		fac := pl.EffectiveFactor(frame, i, int(mod))
		if fac > maxFac[i] {
			maxFac[i] = fac
		}
		dur := float64(nRows) * per * fac
		if dur > maxDur[i] {
			maxDur[i] = dur
		}
		t := sim.Add(res[i].compute, m.modLabel[mod][i], dur, deps...)
		m.obsBuf = append(m.obsBuf, obsRec{dev: i, mod: mod, rows: nRows, task: t})
		return t
	}
	xfer := func(i int, tr sched.Transfer, nRows, bytesPerRow int, h2d bool, deps ...*simclock.Task) *simclock.Task {
		if nRows == 0 || !pl.IsGPU(i) || m.isDown(i) {
			return nil
		}
		p := pl.Dev(i)
		var dur float64
		r := res[i].ceH2D
		if h2d {
			dur = p.TH2D(nRows * bytesPerRow)
		} else {
			dur = p.TD2H(nRows * bytesPerRow)
			r = res[i].ceD2H
		}
		t := sim.Add(r, m.trLabel[tr][i], dur, deps...)
		m.obsBuf = append(m.obsBuf, obsRec{dev: i, tr: tr, isTr: true, rows: nRows, task: t})
		return t
	}

	// --- τ1 phase: RF/CF inputs, INT and ME kernels, SF/MV outputs. -----
	m.tau1Deps = m.tau1Deps[:0]
	for i := 0; i < nDev; i++ {
		var rf *simclock.Task
		if pl.IsGPU(i) && i != rstar {
			// The R* device reconstructed the RF itself; the others fetch
			// it from the host (Fig. 5(a), start of τ1).
			rf = xfer(i, sched.RFh2d, rows, w.RFRowBytes(), true)
		}
		cfIn := xfer(i, sched.CFh2d, d.M[i], w.CFRowBytes(), true, rf)
		sfPrev := xfer(i, sched.SFh2d, prevSigmaR[i], w.SFRowBytes(), true, rf)

		intT := kernel(i, sched.ModINT, d.L[i], rf)
		if intT != nil && m.Mode == Functional {
			lo, hi := offL[i], offL[i]+d.L[i]
			streams := pl.Dev(i).Streams
			payloads.wave1 = append(payloads.wave1, func() { m.Enc.RunINTStreams(job, lo, hi, streams) })
		}
		meT := kernel(i, sched.ModME, d.M[i], cfIn, rf)
		if meT != nil && m.Mode == Functional {
			lo, hi := offM[i], offM[i]+d.M[i]
			streams := pl.Dev(i).Streams
			payloads.wave1 = append(payloads.wave1, func() { m.Enc.RunMEStreams(job, lo, hi, streams) })
		}
		sfOut := xfer(i, sched.SFd2h, d.L[i], w.SFRowBytes(), false, intT)
		mvOut := xfer(i, sched.MVd2h, d.M[i], w.MVRowBytes(), false, meT)
		m.tau1Deps = append(m.tau1Deps, cfIn, sfPrev, intT, meT, sfOut, mvOut)
	}
	tau1 := sim.Add(host, "tau1", 0, m.tau1Deps...)
	if m.Mode == Functional {
		payloads.completeINT = func() { m.Enc.CompleteINT(job) }
	}

	// --- τ2 phase: Δ transfers, SME kernels, MV outputs, R* prefetch. ---
	m.tau2Deps = m.tau2Deps[:0]
	for i := 0; i < nDev; i++ {
		dlIn := xfer(i, sched.SFh2d, d.DeltaL[i], w.SFRowBytes(), true, tau1)
		dmIn := xfer(i, sched.MVh2d, d.DeltaM[i], w.MVRowBytes(), true, tau1)
		smeT := kernel(i, sched.ModSME, d.S[i], tau1, dlIn, dmIn)
		if smeT != nil && m.Mode == Functional {
			lo, hi := offS[i], offS[i]+d.S[i]
			streams := pl.Dev(i).Streams
			payloads.wave2 = append(payloads.wave2, func() { m.Enc.RunSMEStreams(job, lo, hi, streams) })
		}
		m.tau2Deps = append(m.tau2Deps, smeT)
		if pl.IsGPU(i) {
			if i == rstar {
				// Prefetch the remaining CF and SF so MC can run (Fig. 5(b)).
				// The counts clamp at zero: with conservative Δ (e.g. the
				// no-reuse ablation) the device may already hold every row.
				cfMC := xfer(i, sched.CFh2d, clamp0(rows-d.M[i]-d.DeltaM[i]), w.CFRowBytes(), true, tau1)
				sfMC := xfer(i, sched.SFh2d, clamp0(rows-d.L[i]-d.DeltaL[i]), w.SFRowBytes(), true, tau1)
				m.tau2Deps = append(m.tau2Deps, cfMC, sfMC)
			} else {
				mvOut := xfer(i, sched.MVd2h, d.S[i], w.MVRowBytes(), false, smeT)
				m.tau2Deps = append(m.tau2Deps, mvOut)
			}
		}
	}
	tau2 := sim.Add(host, "tau2", 0, m.tau2Deps...)

	// --- τ2 → τtot: R* on its device, σ SF completion on the others. ----
	var rstarTask *simclock.Task
	if pl.IsGPU(rstar) {
		mvIn := xfer(rstar, sched.MVh2d, rows-d.S[rstar], w.MVRowBytes(), true, tau2)
		rstarTask = kernel(rstar, sched.ModRStar, rows, tau2, mvIn)
		xfer(rstar, sched.RFd2h, rows, w.RFRowBytes(), false, rstarTask)
	} else {
		// CPU-centric: the R* group runs cooperatively on the surviving
		// cores; model the parallel section as one slice per core.
		cores := m.upCores()
		per := rows / cores
		extra := rows % cores
		k := 0
		for c := pl.NumGPUs(); c < pl.NumDevices(); c++ {
			if m.isDown(c) {
				continue
			}
			share := per
			if k < extra {
				share++
			}
			k++
			t := kernel(c, sched.ModRStar, share, tau2)
			if c == rstar {
				rstarTask = t
			}
		}
	}
	if rstarTask != nil && m.Mode == Functional {
		payloads.rstar = func() rd.FrameStats { return m.Enc.RunRStar(job) }
	}
	for i := 0; i < nDev; i++ {
		if pl.IsGPU(i) && i != rstar {
			xfer(i, sched.SFh2d, d.Sigma[i], w.SFRowBytes(), true, tau2)
		}
	}

	makespan, err := sim.Run()
	if err != nil {
		return FrameTiming{}, fmt.Errorf("vcm: schedule execution: %w", err)
	}
	// Deadline enforcement happens on the *simulated* timeline, before any
	// functional kernel touches encoder state: an aborted frame leaves the
	// codec exactly as BeginFrame found it, so the core layer's retry on a
	// reduced topology reproduces the bitstream bit-exactly.
	if derr := m.Deadline.check(frame, tau1.End, tau2.End, makespan, maxFac, maxDur); derr != nil {
		return FrameTiming{}, derr
	}
	var stats rd.FrameStats
	if m.Mode == Functional {
		stats = payloads.run(m.Parallel)
	}

	ft := FrameTiming{
		Frame:    frame,
		Tau1:     tau1.End,
		Tau2:     tau2.End,
		Tot:      makespan,
		RStarDev: rstar,
		Stats:    stats,
	}
	m.spans = m.spans[:0]
	for _, t := range sim.Tasks() {
		m.spans = append(m.spans, TaskSpan{
			Resource: t.Res.Name, Label: t.Label, Start: t.Start, End: t.End,
		})
	}
	ft.Spans = m.spans
	if m.Check {
		topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores, Down: m.Down}
		m.chkSpans = m.chkSpans[:0]
		for _, s := range ft.Spans {
			m.chkSpans = append(m.chkSpans, check.Span{Resource: s.Resource, Label: s.Label, Start: s.Start, End: s.End})
		}
		cs := m.chkSpans
		if err := check.Frame(topo, w, d, pm, cs, ft.Tau1, ft.Tau2, ft.Tot); err != nil {
			var ce *check.Error
			if !m.CheckObserve || !errors.As(err, &ce) {
				return FrameTiming{}, fmt.Errorf("vcm: frame %d: %w", frame, err)
			}
			rules := make([]string, len(ce.Violations))
			for i, v := range ce.Violations {
				rules[i] = v.Rule
			}
			m.Telemetry.CheckViolations(frame, rules)
		}
	}
	if m.Telemetry.Enabled() {
		// The trace writer copies the spans it keeps, so the conversion
		// scratch can be reused next frame.
		m.telSpans = m.telSpans[:0]
		for _, s := range ft.Spans {
			m.telSpans = append(m.telSpans, telemetry.Span{Resource: s.Resource, Label: s.Label, Start: s.Start, End: s.End})
		}
		m.Telemetry.FrameSpans(frame, m.Attempt, ft.Tau1, ft.Tau2, ft.Tot, m.telSpans)
	}

	// --- Performance Characterization update (Algorithm 1 lines 5/10). --
	var rstarTotal float64
	for _, o := range m.obsBuf {
		dur := o.task.End - o.task.Start
		if o.isTr {
			pm.ObserveTransfer(o.dev, o.tr, o.rows, dur)
			continue
		}
		ft.ModuleTime[o.mod] += dur
		if o.mod == sched.ModRStar {
			rstarTotal += dur
			continue
		}
		pm.ObserveCompute(o.dev, o.mod, o.rows, w.UsableRF, dur)
	}
	if rstarTotal > 0 {
		// For CPU-centric R* the wall time is the parallel section length,
		// not the summed core time.
		wall := rstarTotal
		if !pl.IsGPU(rstar) {
			wall = rstarTotal / float64(m.upCores())
		}
		pm.ObserveCompute(rstar, sched.ModRStar, 0, 1, wall)
	}
	return ft, nil
}

// upCores counts the CPU cores not marked down.
func (m *Manager) upCores() int {
	pl := m.Platform
	n := 0
	for c := pl.NumGPUs(); c < pl.NumDevices(); c++ {
		if !m.isDown(c) {
			n++
		}
	}
	return n
}

func clamp0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// growFloats returns s resized to n entries, reusing its backing array
// when large enough. Contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
