package vcm

// Frame-parallel execution: two inter frames on distinct reference chains
// are scheduled jointly on one simulated timeline. The chains make the
// frames data-independent (frame B predicts from chain B's references,
// none of which frame A produces), so the only coupling is resource
// contention — and that is exactly what the joint schedule exploits:
// submission interleaves the two frames phase by phase on every device, so
// frame B's wave-1 kernels fill the synchronization stalls of frame A's
// τ1/τ2 barriers instead of idling the accelerators.
//
// Correctness under the simulator's strict-FIFO resources does not depend
// on the submission order — task dependencies enforce the Fig. 4
// structure per frame — so any interleaving is bit-exact; the order only
// shapes the timeline. The functional payloads still run strictly frame A
// then frame B (display order), which serializes the bitstream writes and
// keeps the output byte-identical to the serial two-chain encode.

import (
	"errors"
	"fmt"

	"feves/internal/check"
	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/h264/rd"
	"feves/internal/sched"
	"feves/internal/simclock"
	"feves/internal/telemetry"
)

// ErrPairSceneCut reports that the first frame of a pair scene-cut to an
// intra frame inside R*, flushing every reference chain: the second
// frame's references no longer exist, its functional payloads did not
// run, and the caller must re-encode it serially. The first frame's
// FrameTiming (with its intra stats) is valid.
var ErrPairSceneCut = errors.New("vcm: scene cut inside frame pair, second frame aborted")

// PairInput is one frame's share of a joint two-frame schedule.
type PairInput struct {
	Frame int // 0-based display index (B = A+1 in the steady state)
	Chain int // reference chain the frame predicts from
	W     device.Workload
	D     sched.Distribution
	// PrevSigmaR is the σʳ carry of the previous frame on the same chain.
	PrevSigmaR []int
	CF         *h264.Frame // Functional mode only
	// Deadline holds this frame's budgets (nil disables). In pair mode the
	// core layer arms only Tot and TaskBudget: the per-point τ1/τ2 budgets
	// assume a solo schedule and would misfire on the interleaved one.
	Deadline *Deadline
}

// pairScratch is one in-flight frame's retained build state; the Manager
// keeps two so the frame-parallel steady state allocates nothing.
type pairScratch struct {
	offM, offL, offS []int
	obsBuf           []obsRec
	maxFac, maxDur   []float64
	tasks            []*simclock.Task
	spans            []TaskSpan
	chkSpans         []check.Span
	telSpans         []telemetry.Span
	payloads         framePayloads
	tau1Deps         []*simclock.Task
	tau2Deps         []*simclock.Task
	tau1, tau2       *simclock.Task
	// host is this slot's barrier resource (host for A, host.b for B):
	// zero-duration τ tasks must not share a FIFO queue across frames.
	host *simclock.Resource
	job  *codec.FrameJob
}

func (s *pairScratch) reset(nDev int) {
	s.obsBuf = s.obsBuf[:0]
	s.tasks = s.tasks[:0]
	s.maxFac = growFloats(s.maxFac, nDev)
	s.maxDur = growFloats(s.maxDur, nDev)
	for i := range s.maxFac {
		s.maxFac[i], s.maxDur[i] = 0, 0
	}
	s.payloads.wave1 = s.payloads.wave1[:0]
	s.payloads.wave2 = s.payloads.wave2[:0]
	s.payloads.completeINT = nil
	s.payloads.rstar = nil
	s.tau1Deps = s.tau1Deps[:0]
	s.tau2Deps = s.tau2Deps[:0]
	s.tau1, s.tau2 = nil, nil
	s.job = nil
}

// validatePairInput mirrors EncodeInterFrame's per-frame validation.
func (m *Manager) validatePairInput(in *PairInput) error {
	nDev := m.Platform.NumDevices()
	if err := in.W.Validate(); err != nil {
		return err
	}
	if err := in.D.Validate(in.W.Rows()); err != nil {
		return err
	}
	if len(in.D.M) != nDev {
		return fmt.Errorf("vcm: distribution for %d devices on %d-device platform", len(in.D.M), nDev)
	}
	for i := 0; i < nDev; i++ {
		if m.isDown(i) && (in.D.M[i] != 0 || in.D.L[i] != 0 || in.D.S[i] != 0) {
			return fmt.Errorf("vcm: distribution assigns rows to excluded device %d", i)
		}
	}
	if m.isDown(in.D.RStarDev) {
		return fmt.Errorf("vcm: R* placed on excluded device %d", in.D.RStarDev)
	}
	return nil
}

// pairKernel submits one module kernel for a pair frame, recording the
// observation and blame evidence into the frame's slot.
func (m *Manager) pairKernel(s *pairScratch, frame int, w device.Workload,
	i int, mod sched.Module, nRows int, deps ...*simclock.Task) *simclock.Task {

	if nRows == 0 || m.isDown(i) {
		return nil
	}
	p := m.Platform.Dev(i)
	var per float64
	switch mod {
	case sched.ModME:
		per = p.KME(w)
	case sched.ModINT:
		per = p.KINT(w)
	case sched.ModSME:
		per = p.KSME(w)
	case sched.ModRStar:
		per = p.KRStar(w)
	}
	fac := m.Platform.EffectiveFactor(frame, i, int(mod))
	if fac > s.maxFac[i] {
		s.maxFac[i] = fac
	}
	dur := float64(nRows) * per * fac
	if dur > s.maxDur[i] {
		s.maxDur[i] = dur
	}
	t := m.sim.Add(m.res[i].compute, m.modLabel[mod][i], dur, deps...)
	s.obsBuf = append(s.obsBuf, obsRec{dev: i, mod: mod, rows: nRows, task: t})
	s.tasks = append(s.tasks, t)
	return t
}

// pairXfer submits one host↔device transfer for a pair frame.
func (m *Manager) pairXfer(s *pairScratch, i int, tr sched.Transfer,
	nRows, bytesPerRow int, h2d bool, deps ...*simclock.Task) *simclock.Task {

	if nRows == 0 || !m.Platform.IsGPU(i) || m.isDown(i) {
		return nil
	}
	p := m.Platform.Dev(i)
	var dur float64
	r := m.res[i].ceH2D
	if h2d {
		dur = p.TH2D(nRows * bytesPerRow)
	} else {
		dur = p.TD2H(nRows * bytesPerRow)
		r = m.res[i].ceD2H
	}
	t := m.sim.Add(r, m.trLabel[tr][i], dur, deps...)
	s.obsBuf = append(s.obsBuf, obsRec{dev: i, tr: tr, isTr: true, rows: nRows, task: t})
	s.tasks = append(s.tasks, t)
	return t
}

// pairPhase1 submits one frame's τ1 phase (RF/CF/SFprev inputs, INT and ME
// kernels, SF/MV outputs) and its τ1 barrier.
func (m *Manager) pairPhase1(s *pairScratch, in *PairInput) {
	pl := m.Platform
	nDev := pl.NumDevices()
	d, w := &in.D, in.W
	rows := w.Rows()
	rstar := d.RStarDev
	prevSigmaR := in.PrevSigmaR
	if prevSigmaR == nil {
		prevSigmaR = m.zeroSR
	}
	for i := 0; i < nDev; i++ {
		var rf *simclock.Task
		if pl.IsGPU(i) && i != rstar {
			rf = m.pairXfer(s, i, sched.RFh2d, rows, w.RFRowBytes(), true)
		}
		cfIn := m.pairXfer(s, i, sched.CFh2d, d.M[i], w.CFRowBytes(), true, rf)
		sfPrev := m.pairXfer(s, i, sched.SFh2d, prevSigmaR[i], w.SFRowBytes(), true, rf)

		intT := m.pairKernel(s, in.Frame, w, i, sched.ModINT, d.L[i], rf)
		if intT != nil && m.Mode == Functional {
			lo, hi := s.offL[i], s.offL[i]+d.L[i]
			streams := pl.Dev(i).Streams
			job := s.job
			s.payloads.wave1 = append(s.payloads.wave1, func() { m.Enc.RunINTStreams(job, lo, hi, streams) })
		}
		meT := m.pairKernel(s, in.Frame, w, i, sched.ModME, d.M[i], cfIn, rf)
		if meT != nil && m.Mode == Functional {
			lo, hi := s.offM[i], s.offM[i]+d.M[i]
			streams := pl.Dev(i).Streams
			job := s.job
			s.payloads.wave1 = append(s.payloads.wave1, func() { m.Enc.RunMEStreams(job, lo, hi, streams) })
		}
		sfOut := m.pairXfer(s, i, sched.SFd2h, d.L[i], w.SFRowBytes(), false, intT)
		mvOut := m.pairXfer(s, i, sched.MVd2h, d.M[i], w.MVRowBytes(), false, meT)
		s.tau1Deps = append(s.tau1Deps, cfIn, sfPrev, intT, meT, sfOut, mvOut)
	}
	s.tau1 = m.sim.Add(s.host, "tau1", 0, s.tau1Deps...)
	s.tasks = append(s.tasks, s.tau1)
	if m.Mode == Functional {
		job := s.job
		s.payloads.completeINT = func() { m.Enc.CompleteINT(job) }
	}
}

// pairPhase2 submits one frame's τ2 phase (Δ transfers, SME kernels, MV
// outputs, R* MC prefetch) and its τ2 barrier.
func (m *Manager) pairPhase2(s *pairScratch, in *PairInput) {
	pl := m.Platform
	nDev := pl.NumDevices()
	d, w := &in.D, in.W
	rows := w.Rows()
	rstar := d.RStarDev
	tau1 := s.tau1
	for i := 0; i < nDev; i++ {
		dlIn := m.pairXfer(s, i, sched.SFh2d, d.DeltaL[i], w.SFRowBytes(), true, tau1)
		dmIn := m.pairXfer(s, i, sched.MVh2d, d.DeltaM[i], w.MVRowBytes(), true, tau1)
		smeT := m.pairKernel(s, in.Frame, w, i, sched.ModSME, d.S[i], tau1, dlIn, dmIn)
		if smeT != nil && m.Mode == Functional {
			lo, hi := s.offS[i], s.offS[i]+d.S[i]
			streams := pl.Dev(i).Streams
			job := s.job
			s.payloads.wave2 = append(s.payloads.wave2, func() { m.Enc.RunSMEStreams(job, lo, hi, streams) })
		}
		s.tau2Deps = append(s.tau2Deps, smeT)
		if pl.IsGPU(i) {
			if i == rstar {
				cfMC := m.pairXfer(s, i, sched.CFh2d, clamp0(rows-d.M[i]-d.DeltaM[i]), w.CFRowBytes(), true, tau1)
				sfMC := m.pairXfer(s, i, sched.SFh2d, clamp0(rows-d.L[i]-d.DeltaL[i]), w.SFRowBytes(), true, tau1)
				s.tau2Deps = append(s.tau2Deps, cfMC, sfMC)
			} else {
				mvOut := m.pairXfer(s, i, sched.MVd2h, d.S[i], w.MVRowBytes(), false, smeT)
				s.tau2Deps = append(s.tau2Deps, mvOut)
			}
		}
	}
	s.tau2 = m.sim.Add(s.host, "tau2", 0, s.tau2Deps...)
	s.tasks = append(s.tasks, s.tau2)
}

// pairTail submits one frame's τ2→τtot work: R* on its device (or the
// cooperative CPU section) and the σ SF completions on the others.
func (m *Manager) pairTail(s *pairScratch, in *PairInput) {
	pl := m.Platform
	nDev := pl.NumDevices()
	d, w := &in.D, in.W
	rows := w.Rows()
	rstar := d.RStarDev
	tau2 := s.tau2
	var rstarTask *simclock.Task
	if pl.IsGPU(rstar) {
		mvIn := m.pairXfer(s, rstar, sched.MVh2d, rows-d.S[rstar], w.MVRowBytes(), true, tau2)
		rstarTask = m.pairKernel(s, in.Frame, w, rstar, sched.ModRStar, rows, tau2, mvIn)
		m.pairXfer(s, rstar, sched.RFd2h, rows, w.RFRowBytes(), false, rstarTask)
	} else {
		cores := m.upCores()
		per := rows / cores
		extra := rows % cores
		k := 0
		for c := pl.NumGPUs(); c < pl.NumDevices(); c++ {
			if m.isDown(c) {
				continue
			}
			share := per
			if k < extra {
				share++
			}
			k++
			t := m.pairKernel(s, in.Frame, w, c, sched.ModRStar, share, tau2)
			if c == rstar {
				rstarTask = t
			}
		}
	}
	if rstarTask != nil && m.Mode == Functional {
		job := s.job
		s.payloads.rstar = func() rd.FrameStats { return m.Enc.RunRStar(job) }
	}
	for i := 0; i < nDev; i++ {
		if pl.IsGPU(i) && i != rstar {
			m.pairXfer(s, i, sched.SFh2d, d.Sigma[i], w.SFRowBytes(), true, tau2)
		}
	}
}

// EncodeInterFramePair simulates two inter frames on distinct reference
// chains as one joint schedule, returning each frame's measured timing.
// The frames' submissions interleave phase by phase; the functional
// payloads run frame a then frame b, reproducing the serial two-chain
// bitstream byte for byte. Deadline budgets are checked per frame before
// any functional kernel runs, so a trip aborts *both* frames with the
// encoder untouched and the pair retries bit-exactly.
func (m *Manager) EncodeInterFramePair(a, b PairInput, pm *sched.PerfModel) (FrameTiming, FrameTiming, error) {
	if a.Chain == b.Chain {
		return FrameTiming{}, FrameTiming{}, fmt.Errorf("vcm: pair frames %d and %d share chain %d", a.Frame, b.Frame, a.Chain)
	}
	if err := m.validatePairInput(&a); err != nil {
		return FrameTiming{}, FrameTiming{}, err
	}
	if err := m.validatePairInput(&b); err != nil {
		return FrameTiming{}, FrameTiming{}, err
	}
	m.ensureSim()

	ins := [2]*PairInput{&a, &b}
	for k, in := range ins {
		s := &m.pairScr[k]
		s.reset(m.Platform.NumDevices())
		s.offM = sched.OffsetsInto(s.offM, in.D.M)
		s.offL = sched.OffsetsInto(s.offL, in.D.L)
		s.offS = sched.OffsetsInto(s.offS, in.D.S)
		if m.Mode == Functional {
			if m.Enc == nil || in.CF == nil {
				return FrameTiming{}, FrameTiming{}, fmt.Errorf("vcm: functional mode needs an encoder and a frame")
			}
			if in.CF.MBHeight() != in.W.Rows() || in.CF.MBWidth() != in.W.MBW {
				return FrameTiming{}, FrameTiming{}, fmt.Errorf("vcm: frame is %dx%d MBs but workload says %dx%d",
					in.CF.MBWidth(), in.CF.MBHeight(), in.W.MBW, in.W.MBH)
			}
			if m.Enc.Chains() < 2 {
				return FrameTiming{}, FrameTiming{}, fmt.Errorf("vcm: frame-parallel encoding needs a two-chain encoder")
			}
			s.job = m.Enc.BeginFrameOn(in.CF, in.Chain)
		}
	}
	sA, sB := &m.pairScr[0], &m.pairScr[1]
	sA.host, sB.host = m.host, m.hostB

	// Interleaved submission: per phase, frame A's tasks enter every
	// device queue first, frame B's right behind — B's wave fills A's
	// synchronization stalls on the strict-FIFO engines.
	m.pairPhase1(sA, &a)
	m.pairPhase1(sB, &b)
	m.pairPhase2(sA, &a)
	m.pairPhase2(sB, &b)
	m.pairTail(sA, &a)
	m.pairTail(sB, &b)

	makespan, err := m.sim.Run()
	if err != nil {
		return FrameTiming{}, FrameTiming{}, fmt.Errorf("vcm: pair schedule execution: %w", err)
	}
	totA := maxTaskEnd(sA.tasks)
	totB := maxTaskEnd(sB.tasks)

	// Deadline enforcement for both frames happens before any functional
	// kernel touches encoder state: an aborted pair leaves the codec
	// exactly as BeginFrameOn found it. Both checks run and the error
	// that names a culprit wins: on the shared FIFO engines one frame's
	// lateness is often caused by the partner's sick device (a fault
	// landing on frame B drags frame A's τtot past its budget too), and
	// failover can only act on blame.
	derrA := a.Deadline.check(a.Frame, sA.tau1.End, sA.tau2.End, totA, sA.maxFac, sA.maxDur)
	derrB := b.Deadline.check(b.Frame, sB.tau1.End, sB.tau2.End, totB, sB.maxFac, sB.maxDur)
	if derrA != nil || derrB != nil {
		derr := derrA
		if derr == nil || (len(derr.Blamed) == 0 && derrB != nil && len(derrB.Blamed) > 0) {
			derr = derrB
		}
		return FrameTiming{}, FrameTiming{}, derr
	}

	ftA := FrameTiming{Frame: a.Frame, Tau1: sA.tau1.End, Tau2: sA.tau2.End,
		Tot: totA, RStarDev: a.D.RStarDev, Chain: a.Chain, PairMakespan: makespan}
	ftB := FrameTiming{Frame: b.Frame, Tau1: sB.tau1.End, Tau2: sB.tau2.End,
		Tot: totB, RStarDev: b.D.RStarDev, Chain: b.Chain, PairMakespan: makespan}

	sceneCut := false
	if m.Mode == Functional {
		ftA.Stats = sA.payloads.run(m.Parallel)
		if ftA.Stats.Intra {
			// Frame A scene-cut to intra inside R*: every chain was
			// flushed, frame B's references are gone. B's payloads must
			// not run; report A complete and B aborted.
			sceneCut = true
		} else {
			ftB.Stats = sB.payloads.run(m.Parallel)
		}
	}

	for k := range ins {
		s := &m.pairScr[k]
		s.spans = s.spans[:0]
		for _, t := range s.tasks {
			s.spans = append(s.spans, TaskSpan{Resource: t.Res.Name, Label: t.Label, Start: t.Start, End: t.End})
		}
	}
	ftA.Spans, ftB.Spans = sA.spans, sB.spans

	if m.Check {
		if err := m.checkPair(&a, &b, &ftA, &ftB, pm, sceneCut); err != nil {
			return FrameTiming{}, FrameTiming{}, err
		}
	}

	if m.Telemetry.Enabled() {
		// Both frames share one simulated interval: frame A advances the
		// run offset by zero so frame B lands on the same origin, and B
		// advances it by the pair makespan.
		m.pairTelemetry(sA, &ftA, 0)
		if !sceneCut {
			m.pairTelemetry(sB, &ftB, makespan)
		}
	}

	m.observePair(sA, &a, &ftA, pm)
	if !sceneCut {
		m.observePair(sB, &b, &ftB, pm)
	}
	if sceneCut {
		return ftA, FrameTiming{}, ErrPairSceneCut
	}
	return ftA, ftB, nil
}

// checkPair runs the per-frame schedule validator on each frame of the
// pair plus the cross-frame pair rules.
func (m *Manager) checkPair(a, b *PairInput, ftA, ftB *FrameTiming, pm *sched.PerfModel, sceneCut bool) error {
	pl := m.Platform
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores, Down: m.Down}
	for k, in := range [2]*PairInput{a, b} {
		if sceneCut && k == 1 {
			break // frame B was aborted; its schedule never completed
		}
		s := &m.pairScr[k]
		ft := ftA
		if k == 1 {
			ft = ftB
		}
		s.chkSpans = s.chkSpans[:0]
		for _, sp := range s.spans {
			s.chkSpans = append(s.chkSpans, check.Span{Resource: sp.Resource, Label: sp.Label, Start: sp.Start, End: sp.End})
		}
		if err := check.Frame(topo, in.W, in.D, pm, s.chkSpans, ft.Tau1, ft.Tau2, ft.Tot); err != nil {
			if verr := m.reportCheck(in.Frame, err); verr != nil {
				return verr
			}
		}
	}
	pa := check.PairExec{Frame: a.Frame, Chain: a.Chain, Spans: m.pairScr[0].chkSpans, Tot: ftA.Tot}
	pb := check.PairExec{Frame: b.Frame, Chain: b.Chain, Spans: m.pairScr[1].chkSpans, Tot: ftB.Tot}
	if !sceneCut {
		if err := check.Pair(pa, pb); err != nil {
			if verr := m.reportCheck(b.Frame, err); verr != nil {
				return verr
			}
		}
	}
	return nil
}

// reportCheck applies the CheckObserve policy to one validation error:
// fatal by default, counted into telemetry in observe mode.
func (m *Manager) reportCheck(frame int, err error) error {
	var ce *check.Error
	if !m.CheckObserve || !errors.As(err, &ce) {
		return fmt.Errorf("vcm: frame %d: %w", frame, err)
	}
	rules := make([]string, len(ce.Violations))
	for i, v := range ce.Violations {
		rules[i] = v.Rule
	}
	m.Telemetry.CheckViolations(frame, rules)
	return nil
}

// pairTelemetry stages one pair frame's spans for the trace and flight
// recorder, advancing the run offset by advance (zero for frame A so both
// frames of the pair share one trace origin).
func (m *Manager) pairTelemetry(s *pairScratch, ft *FrameTiming, advance float64) {
	s.telSpans = s.telSpans[:0]
	for _, sp := range s.spans {
		s.telSpans = append(s.telSpans, telemetry.Span{Resource: sp.Resource, Label: sp.Label, Start: sp.Start, End: sp.End})
	}
	m.Telemetry.FrameSpansAdvance(ft.Frame, m.Attempt, ft.Tau1, ft.Tau2, ft.Tot, advance, s.telSpans)
}

// observePair feeds one pair frame's executed tasks into the Performance
// Characterization, exactly as the serial path does.
func (m *Manager) observePair(s *pairScratch, in *PairInput, ft *FrameTiming, pm *sched.PerfModel) {
	pl := m.Platform
	rstar := in.D.RStarDev
	var rstarTotal float64
	for _, o := range s.obsBuf {
		dur := o.task.End - o.task.Start
		if o.isTr {
			pm.ObserveTransfer(o.dev, o.tr, o.rows, dur)
			continue
		}
		ft.ModuleTime[o.mod] += dur
		if o.mod == sched.ModRStar {
			rstarTotal += dur
			continue
		}
		pm.ObserveCompute(o.dev, o.mod, o.rows, in.W.UsableRF, dur)
	}
	if rstarTotal > 0 {
		wall := rstarTotal
		if !pl.IsGPU(rstar) {
			wall = rstarTotal / float64(m.upCores())
		}
		pm.ObserveCompute(rstar, sched.ModRStar, 0, 1, wall)
	}
}

// maxTaskEnd returns the latest end time over one frame's tasks.
func maxTaskEnd(tasks []*simclock.Task) float64 {
	end := 0.0
	for _, t := range tasks {
		if t.End > end {
			end = t.End
		}
	}
	return end
}
