package vcm

import (
	"fmt"
	"strings"
)

// Deadline arms per-sync-point budget enforcement on EncodeInterFrame: the
// measured τ1/τ2/τtot of the simulated schedule must stay within the given
// budgets (simulated seconds; zero disables that point). The budgets are
// derived by the core layer from the LP's predicted timeline times a slack
// factor. TaskBudget additionally bounds any single kernel invocation —
// the safety net that catches a stalled device during the equidistant
// initialization frames, when no LP prediction exists yet.
type Deadline struct {
	Tau1, Tau2, Tot float64
	TaskBudget      float64
}

// DeadlineError reports a blown budget: which synchronization point, by
// how much, and which devices the blame heuristic points at (the ones
// whose observed kernel slowdown factor is an outlier). An empty Blamed
// list means the schedule was late without any single device standing out
// — an LP misprediction rather than a device fault.
type DeadlineError struct {
	Frame            int
	Point            string // "tau1", "tau2", "tau_tot" or "task"
	Measured, Budget float64
	// Blamed lists the suspect device indices (platform numbering).
	Blamed []int
	// MaxFactor[i] is device i's largest observed kernel slowdown factor
	// this frame (jitter × perturbation × faults), the blame evidence.
	MaxFactor []float64
}

// Error implements error.
func (e *DeadlineError) Error() string {
	who := "no single device to blame"
	if len(e.Blamed) > 0 {
		parts := make([]string, len(e.Blamed))
		for i, d := range e.Blamed {
			parts[i] = fmt.Sprintf("%d (×%.3g)", d, e.MaxFactor[d])
		}
		who = "blaming device(s) " + strings.Join(parts, ", ")
	}
	return fmt.Sprintf("vcm: frame %d blew the %s deadline: %.4g s > budget %.4g s; %s",
		e.Frame, e.Point, e.Measured, e.Budget, who)
}

// blame marks the devices whose slowdown factor is an outlier: at least
// 1.5× nominal and within half of the worst offender. Ordinary jitter
// (a few percent) never qualifies, so a merely mispredicted frame yields
// an empty list.
func blame(maxFac []float64) []int {
	worst := 0.0
	for _, f := range maxFac {
		if f > worst {
			worst = f
		}
	}
	var out []int
	for i, f := range maxFac {
		if f >= 1.5 && f >= worst/2 {
			out = append(out, i)
		}
	}
	return out
}

// check evaluates the budgets against one frame's measurements. maxFac and
// maxDur are per-device maxima of the frame's kernel slowdown factors and
// kernel durations.
func (dl *Deadline) check(frame int, t1, t2, tot float64, maxFac, maxDur []float64) *DeadlineError {
	if dl == nil {
		return nil
	}
	fail := func(point string, meas, budget float64) *DeadlineError {
		return &DeadlineError{
			Frame: frame, Point: point, Measured: meas, Budget: budget,
			Blamed: blame(maxFac), MaxFactor: maxFac,
		}
	}
	if dl.TaskBudget > 0 {
		for i, d := range maxDur {
			if d > dl.TaskBudget {
				e := fail("task", d, dl.TaskBudget)
				// A single over-budget task is direct evidence against its
				// device even if the factor heuristic missed it.
				if !contains(e.Blamed, i) {
					e.Blamed = append(e.Blamed, i)
				}
				return e
			}
		}
	}
	switch {
	case dl.Tau1 > 0 && t1 > dl.Tau1:
		return fail("tau1", t1, dl.Tau1)
	case dl.Tau2 > 0 && t2 > dl.Tau2:
		return fail("tau2", t2, dl.Tau2)
	case dl.Tot > 0 && tot > dl.Tot:
		return fail("tau_tot", tot, dl.Tot)
	}
	return nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
