package vcm

import (
	"testing"

	"strings"

	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/sched"
	"feves/internal/telemetry"
	"feves/internal/video"
)

func wl1080p(sa, rf int) device.Workload {
	return device.Workload{MBW: 120, MBH: 68, SA: sa, NumRF: rf, UsableRF: rf}
}

// runFrames simulates n inter-frames in timing-only mode: equidistant for
// the first frame, LP-balanced afterwards — the Algorithm 1 loop.
func runFrames(t *testing.T, pl *device.Platform, w device.Workload, n int) []FrameTiming {
	t.Helper()
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	m := &Manager{Platform: pl, Mode: TimingOnly}
	balancer := &sched.LPBalancer{}
	prevSigmaR := make([]int, topo.NumDevices())
	var out []FrameTiming
	for f := 1; f <= n; f++ {
		var d sched.Distribution
		var err error
		if !pm.Ready() {
			d = sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
		} else {
			d, err = balancer.Distribute(pm, topo, w, prevSigmaR)
			if err != nil {
				t.Fatalf("frame %d: %v", f, err)
			}
		}
		ft, err := m.EncodeInterFrame(f, w, d, pm, prevSigmaR, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		prevSigmaR = d.SigmaR
		out = append(out, ft)
	}
	return out
}

func TestTimingOnlySysHK(t *testing.T) {
	fts := runFrames(t, device.SysHK(), wl1080p(32, 1), 6)
	for i, ft := range fts {
		if !(ft.Tau1 > 0 && ft.Tau1 <= ft.Tau2 && ft.Tau2 <= ft.Tot) {
			t.Fatalf("frame %d: τ1=%v τ2=%v τtot=%v out of order", i+1, ft.Tau1, ft.Tau2, ft.Tot)
		}
	}
	// The LP-balanced frames must beat the equidistant first frame — the
	// headline behaviour of Fig. 7.
	if fts[3].Tot >= fts[0].Tot {
		t.Fatalf("balanced frame (%.1f ms) not faster than equidistant frame (%.1f ms)",
			fts[3].Tot*1e3, fts[0].Tot*1e3)
	}
}

func TestCollaborationBeatsSingleDevice(t *testing.T) {
	w := wl1080p(32, 1)
	sysFts := runFrames(t, device.SysHK(), w, 8)
	gpuFts := runFrames(t, device.GPUOnly("GPU_K", device.GPUKepler()), w, 8)
	cpuFts := runFrames(t, device.CPUOnly("CPU_H", device.CPUHaswellCore(), 4), w, 8)
	sys, gpu, cpu := sysFts[7].Tot, gpuFts[7].Tot, cpuFts[7].Tot
	if sys >= gpu {
		t.Fatalf("SysHK (%.1f ms) must beat GPU_K alone (%.1f ms)", sys*1e3, gpu*1e3)
	}
	if sys >= cpu {
		t.Fatalf("SysHK (%.1f ms) must beat CPU_H alone (%.1f ms)", sys*1e3, cpu*1e3)
	}
	// Paper: SysHK ≈ 1.3× GPU_K and ≈ 3× CPU_H at SA 32.
	if sp := gpu / sys; sp < 1.1 || sp > 1.7 {
		t.Errorf("SysHK speedup vs GPU_K = %.2f, expected ≈1.3", sp)
	}
	if sp := cpu / sys; sp < 2.2 || sp > 5 {
		t.Errorf("SysHK speedup vs CPU_H = %.2f, expected ≈3", sp)
	}
}

func TestRealTimeCrossoversMatchPaper(t *testing.T) {
	// Fig. 6(a) structure after the kernel speed pass: the calibrated
	// profiles are the Fig. 6 base anchoring divided by the measured
	// kernel speedups (device.DefaultCalibration), which shifts the
	// real-time frontier roughly one SA tier outward while preserving the
	// figure's ordering — heterogeneous systems beat the best GPU, GPUs
	// beat CPUs, and each device class falls out of real-time as the SA
	// (and with it the quadratic ME load) grows.
	check := func(pl *device.Platform, sa int, wantRT bool) {
		fts := runFrames(t, pl, wl1080p(sa, 1), 6)
		fps := fts[5].FPS()
		if (fps >= 25) != wantRT {
			t.Errorf("%s at SA %d: %.1f fps, want real-time=%v", pl.Name, sa, fps, wantRT)
		}
	}
	check(device.GPUOnly("GPU_F", device.GPUFermi()), 32, true)
	check(device.GPUOnly("GPU_K", device.GPUKepler()), 32, true)
	check(device.CPUOnly("CPU_N", device.CPUNehalemCore(), 4), 32, true)
	check(device.CPUOnly("CPU_N", device.CPUNehalemCore(), 4), 64, false)
	check(device.CPUOnly("CPU_H", device.CPUHaswellCore(), 4), 64, true)
	check(device.CPUOnly("CPU_H", device.CPUHaswellCore(), 4), 128, false)
	check(device.SysHK(), 64, true)
	check(device.SysNF(), 64, true)
	check(device.SysNFF(), 64, true)
	check(device.GPUOnly("GPU_F", device.GPUFermi()), 128, false)
	check(device.GPUOnly("GPU_K", device.GPUKepler()), 128, true)
	check(device.SysHK(), 128, true)
	check(device.SysNFF(), 128, true)
	check(device.SysHK(), 192, false)
}

func TestPerturbationRecovery(t *testing.T) {
	// Fig. 7: a sudden slowdown at one frame raises its time; the next
	// balanced frame recovers.
	pl := device.SysHK()
	pl.Perturb = func(frame, dev int) float64 {
		if frame == 5 && dev == 0 {
			return 3 // GPU 3× slower during frame 5
		}
		return 1
	}
	fts := runFrames(t, pl, wl1080p(32, 1), 8)
	base := fts[3].Tot
	if fts[4].Tot < base*1.3 {
		t.Fatalf("perturbed frame 5 (%.1f ms) should be much slower than %.1f ms",
			fts[4].Tot*1e3, base*1e3)
	}
	// Within two frames the distribution re-adapts.
	if fts[6].Tot > base*1.2 {
		t.Fatalf("frame 7 (%.1f ms) did not recover to ≈%.1f ms", fts[6].Tot*1e3, base*1e3)
	}
}

func TestDualCopyEngineNoSlower(t *testing.T) {
	w := wl1080p(64, 2)
	single := &device.Platform{Name: "1ce", GPUs: []device.Profile{device.GPUKepler()},
		CPUCore: device.CPUHaswellCore(), Cores: 4, Seed: 1}
	dual := &device.Platform{Name: "2ce", GPUs: []device.Profile{device.GPUKepler().WithCopyEngines(2)},
		CPUCore: device.CPUHaswellCore(), Cores: 4, Seed: 1}
	fs := runFrames(t, single, w, 6)
	fd := runFrames(t, dual, w, 6)
	if fd[5].Tot > fs[5].Tot*1.02 {
		t.Fatalf("dual copy engine (%.2f ms) slower than single (%.2f ms)",
			fd[5].Tot*1e3, fs[5].Tot*1e3)
	}
}

func TestCPUCentricPlatform(t *testing.T) {
	// A platform whose GPU is terrible: R* must run CPU-centric and the
	// schedule must still be consistent.
	pl := &device.Platform{Name: "snail",
		GPUs:    []device.Profile{device.GPUFermi().Scaled(50, "GPU_snail")},
		CPUCore: device.CPUHaswellCore(), Cores: 4, Seed: 1}
	fts := runFrames(t, pl, wl1080p(32, 1), 5)
	last := fts[4]
	if last.RStarDev == 0 {
		t.Fatal("R* should have moved off the slow GPU")
	}
	if !(last.Tau1 <= last.Tau2 && last.Tau2 <= last.Tot) {
		t.Fatal("synchronization points out of order")
	}
}

func TestFunctionalCollaborativeBitExact(t *testing.T) {
	// The flagship integration test: a functional VCM encode on a
	// simulated heterogeneous platform produces exactly the bitstream of
	// the single-call reference encoder.
	const wpx, hpx, frames = 64, 64, 5
	cfg := codec.Config{Width: wpx, Height: hpx, SearchRange: 8, NumRF: 2, IQP: 27, PQP: 28}
	src := video.NewSynthetic(wpx, hpx, frames, 7)

	ref, err := codec.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if _, err := ref.EncodeFrame(src.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}

	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := device.SysNF()
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	m := &Manager{Platform: pl, Mode: Functional, Enc: enc}
	bal := &sched.LPBalancer{}

	if _, err := enc.EncodeIntraFrame(src.FrameAt(0)); err != nil {
		t.Fatal(err)
	}
	prevSigmaR := make([]int, topo.NumDevices())
	for f := 1; f < frames; f++ {
		w := device.Workload{MBW: wpx / 16, MBH: hpx / 16, SA: 16, NumRF: cfg.NumRF,
			UsableRF: min(f, cfg.NumRF)}
		var d sched.Distribution
		if !pm.Ready() {
			d = sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
		} else {
			d, err = bal.Distribute(pm, topo, w, prevSigmaR)
			if err != nil {
				t.Fatal(err)
			}
		}
		ft, err := m.EncodeInterFrame(f, w, d, pm, prevSigmaR, src.FrameAt(f))
		if err != nil {
			t.Fatal(err)
		}
		if ft.Stats.Bits <= 0 {
			t.Fatalf("frame %d: functional stats missing", f)
		}
		prevSigmaR = d.SigmaR
	}

	a, b := ref.Bitstream(), enc.Bitstream()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bitstreams diverge at byte %d", i)
		}
	}
	if !ref.LastRecon().Equal(enc.LastRecon()) {
		t.Fatal("reconstructions differ")
	}
}

func TestFunctionalModeValidation(t *testing.T) {
	m := &Manager{Platform: device.SysHK(), Mode: Functional}
	w := wl1080p(32, 1)
	d := sched.Equidistant(5, w.Rows(), 0)
	pm := sched.NewPerfModel(5, 1)
	if _, err := m.EncodeInterFrame(1, w, d, pm, nil, nil); err == nil {
		t.Fatal("functional mode without encoder must fail")
	}
	cfg := codec.Config{Width: 64, Height: 64, SearchRange: 8, NumRF: 1, IQP: 27, PQP: 28}
	enc, _ := codec.NewEncoder(cfg)
	m.Enc = enc
	if _, err := enc.EncodeIntraFrame(h264.NewFrame(64, 64)); err != nil {
		t.Fatal(err)
	}
	// Frame geometry mismatch with the 1080p workload.
	if _, err := m.EncodeInterFrame(1, w, d, pm, nil, h264.NewFrame(64, 64)); err == nil {
		t.Fatal("geometry mismatch must fail")
	}
}

func TestDistributionMismatchRejected(t *testing.T) {
	m := &Manager{Platform: device.SysHK(), Mode: TimingOnly}
	w := wl1080p(32, 1)
	d := sched.Equidistant(3, w.Rows(), 0) // SysHK has 5 devices
	pm := sched.NewPerfModel(5, 1)
	if _, err := m.EncodeInterFrame(1, w, d, pm, nil, nil); err == nil {
		t.Fatal("device-count mismatch must fail")
	}
}

func TestModuleTimesPopulated(t *testing.T) {
	fts := runFrames(t, device.GPUOnly("GPU_K", device.GPUKepler()), wl1080p(32, 1), 2)
	ft := fts[1]
	for mod := sched.ModME; mod <= sched.ModRStar; mod++ {
		if ft.ModuleTime[mod] <= 0 {
			t.Fatalf("module %v time missing", mod)
		}
	}
	// §II: ME dominates the inter-loop at this SA.
	if ft.ModuleTime[sched.ModME] < ft.ModuleTime[sched.ModSME] {
		t.Fatal("ME should dominate SME")
	}
}

func TestFPSHelper(t *testing.T) {
	if (FrameTiming{Tot: 0.04}).FPS() != 25 {
		t.Fatal("FPS wrong")
	}
	if (FrameTiming{}).FPS() != 0 {
		t.Fatal("zero-time FPS should be 0")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestParallelFunctionalBitExact(t *testing.T) {
	// Concurrent kernel execution must not change a single bit of output.
	const wpx, hpx, frames = 64, 64, 4
	cfg := codec.Config{Width: wpx, Height: hpx, SearchRange: 8, NumRF: 2, IQP: 27, PQP: 28}
	src := video.NewSynthetic(wpx, hpx, frames, 77)
	run := func(parallel bool) []byte {
		enc, err := codec.NewEncoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pl := device.SysNFF()
		topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
		pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
		m := &Manager{Platform: pl, Mode: Functional, Enc: enc, Parallel: parallel}
		if _, err := enc.EncodeIntraFrame(src.FrameAt(0)); err != nil {
			t.Fatal(err)
		}
		prev := make([]int, topo.NumDevices())
		bal := &sched.LPBalancer{}
		for f := 1; f < frames; f++ {
			w := device.Workload{MBW: wpx / 16, MBH: hpx / 16, SA: 16, NumRF: cfg.NumRF,
				UsableRF: min(f, cfg.NumRF)}
			var d sched.Distribution
			var err error
			if !pm.Ready() {
				d = sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
			} else {
				d, err = bal.Distribute(pm, topo, w, prev)
				if err != nil {
					t.Fatal(err)
				}
			}
			if _, err := m.EncodeInterFrame(f, w, d, pm, prev, src.FrameAt(f)); err != nil {
				t.Fatal(err)
			}
			prev = d.SigmaR
		}
		return enc.Bitstream()
	}
	seq := run(false)
	par := run(true)
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("parallel execution changed byte %d", i)
		}
	}
}

func TestSpansConsistentWithSyncPoints(t *testing.T) {
	fts := runFrames(t, device.SysNF(), wl1080p(32, 1), 3)
	ft := fts[2]
	if len(ft.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	var maxEnd float64
	tau1Seen, tau2Seen := false, false
	for _, s := range ft.Spans {
		if s.End < s.Start {
			t.Fatalf("span %q ends before it starts", s.Label)
		}
		if s.End > maxEnd {
			maxEnd = s.End
		}
		switch s.Label {
		case "tau1":
			tau1Seen = true
			if s.End != ft.Tau1 {
				t.Fatalf("tau1 span ends at %v, FrameTiming says %v", s.End, ft.Tau1)
			}
		case "tau2":
			tau2Seen = true
			if s.End != ft.Tau2 {
				t.Fatalf("tau2 span ends at %v, FrameTiming says %v", s.End, ft.Tau2)
			}
		}
	}
	if !tau1Seen || !tau2Seen {
		t.Fatal("synchronization barriers missing from spans")
	}
	if maxEnd != ft.Tot {
		t.Fatalf("latest span ends at %v, τtot is %v", maxEnd, ft.Tot)
	}
	// Every resource's spans are serialized.
	byRes := map[string]float64{}
	for _, s := range ft.Spans {
		if s.Start < byRes[s.Resource] {
			t.Fatalf("resource %s overlaps at %v", s.Resource, s.Start)
		}
		byRes[s.Resource] = s.End
	}
}

// TestCheckObserveMode tampers a distribution so the invariant checker
// fires, and verifies the two wirings: fatal by default, counted into the
// telemetry sink (feves_check_violations_total) in observe mode — the
// serving path, where one tenant's broken schedule must not kill the
// session.
func TestCheckObserveMode(t *testing.T) {
	pl := device.SysHK()
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	w := wl1080p(32, 1)
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	d := sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
	// Prefetch more SF rows than the device can possibly miss — passes the
	// row-sum validation vcm itself does, but breaks the checker's σ
	// accounting (dist.sigma-overrun).
	d.Sigma[0] = w.Rows()

	fatal := &Manager{Platform: pl, Mode: TimingOnly, Check: true}
	if _, err := fatal.EncodeInterFrame(1, w, d, pm, make([]int, topo.NumDevices()), nil); err == nil {
		t.Fatal("broken distribution passed the fatal checker")
	}

	tel := telemetry.New(nil)
	obs := &Manager{Platform: pl, Mode: TimingOnly, Check: true,
		CheckObserve: true, Telemetry: tel}
	pm2 := sched.NewPerfModel(topo.NumDevices(), 0.8)
	if _, err := obs.EncodeInterFrame(1, w, d, pm2, make([]int, topo.NumDevices()), nil); err != nil {
		t.Fatalf("observe mode must not fail the frame: %v", err)
	}
	text := tel.Metrics.Expose()
	if !strings.Contains(text, "feves_check_violations_total") {
		t.Fatalf("violation not counted:\n%s", text)
	}
}
