package vcm

import (
	"testing"

	"feves/internal/device"
	"feves/internal/sched"
)

// TestScheduleBuildZeroAllocs asserts the tentpole's steady-state
// contract at the VCM layer: once the simulator, label tables and span
// buffers are sized by the first frames, a full timing-only inter-frame
// — LP balance, simulated-clock schedule build, model observation, span
// export — allocates nothing.
func TestScheduleBuildZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	w := wl1080p(32, 1)
	pl := device.SysNFF()
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	m := &Manager{Platform: pl, Mode: TimingOnly}
	balancer := &sched.LPBalancer{}
	prevSigmaR := make([]int, topo.NumDevices())
	frame := 0
	step := func() {
		frame++
		var d sched.Distribution
		var err error
		if !pm.Ready() {
			d = sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
		} else {
			d, err = balancer.Distribute(pm, topo, w, prevSigmaR)
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.EncodeInterFrame(frame, w, d, pm, prevSigmaR, nil); err != nil {
			t.Fatal(err)
		}
		prevSigmaR = append(prevSigmaR[:0], d.SigmaR...)
	}
	// First frame characterizes the model (equidistant path allocates its
	// distribution). The manager and balancer scratch sizes in the first
	// few frames, but the EWMA model keeps shifting the distribution — and
	// with it the per-frame task shapes (σ/σʳ oscillation included) — for
	// a few dozen frames; every new shape can grow a retained buffer once.
	// Steady state is reached when the model converges, ~40 frames in.
	for i := 0; i < 40; i++ {
		step()
	}
	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Fatalf("steady-state inter-frame allocates %v per call, want 0", n)
	}
}

// TestManagerReuseAcrossPlatforms pins ensureSim's rebuild key: switching
// the Manager to a different platform rebuilds the simulator rather than
// replaying the stale one, and switching back still works.
func TestManagerReuseAcrossPlatforms(t *testing.T) {
	w := wl1080p(32, 1)
	run := func(m *Manager, pl *device.Platform) FrameTiming {
		m.Platform = pl
		topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
		pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
		d := sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
		ft, err := m.EncodeInterFrame(1, w, d, pm, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ft
	}
	shared := &Manager{Mode: TimingOnly}
	hk := run(shared, device.SysHK())
	nff := run(shared, device.SysNFF())
	hk2 := run(shared, device.SysHK())

	if fresh := run(&Manager{Mode: TimingOnly}, device.SysNFF()); nff.Tot != fresh.Tot {
		t.Fatalf("reused manager on SysNFF: τtot %v, fresh manager %v", nff.Tot, fresh.Tot)
	}
	if hk.Tot != hk2.Tot {
		t.Fatalf("SysHK before/after platform switch: τtot %v vs %v", hk.Tot, hk2.Tot)
	}
}

// BenchmarkScheduleBuild measures the steady-state cost of one
// timing-only inter-frame: LP balancing plus the simulated-clock
// schedule build. This is the per-frame scheduling overhead the paper's
// framework adds on top of the encoder kernels.
func BenchmarkScheduleBuild(b *testing.B) {
	w := wl1080p(32, 1)
	pl := device.SysNFF()
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	m := &Manager{Platform: pl, Mode: TimingOnly}
	balancer := &sched.LPBalancer{}
	prevSigmaR := make([]int, topo.NumDevices())
	frame := 0
	step := func() error {
		frame++
		var d sched.Distribution
		var err error
		if !pm.Ready() {
			d = sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
		} else {
			d, err = balancer.Distribute(pm, topo, w, prevSigmaR)
			if err != nil {
				return err
			}
		}
		if _, err := m.EncodeInterFrame(frame, w, d, pm, prevSigmaR, nil); err != nil {
			return err
		}
		prevSigmaR = append(prevSigmaR[:0], d.SigmaR...)
		return nil
	}
	for i := 0; i < 3; i++ {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
}
