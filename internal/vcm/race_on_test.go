//go:build race

package vcm

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race, which inflates counts.
const raceEnabled = true
