package vcm

import (
	"errors"
	"strings"
	"testing"

	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/sched"
	"feves/internal/telemetry"
	"feves/internal/video"
)

// runPairs drives the Algorithm 1 loop with two frames in flight: per
// pair, each chain gets its own LP-balanced distribution (equidistant
// until the model converges) and its own σʳ carry, exactly as the core
// layer does. Frames are numbered 1,2 / 3,4 / … with chain 0 on the odd
// (slot A) frame, matching chain = (idx − lastIntra − 1) mod 2 for an
// intra frame at index 0.
func runPairs(t *testing.T, m *Manager, w device.Workload, nPairs int) [][2]FrameTiming {
	t.Helper()
	pl := m.Platform
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	bal := &sched.LPBalancer{}
	prev := [2][]int{make([]int, topo.NumDevices()), make([]int, topo.NumDevices())}
	var out [][2]FrameTiming
	for p := 0; p < nPairs; p++ {
		var ds [2]sched.Distribution
		for c := 0; c < 2; c++ {
			if !pm.Ready() {
				ds[c] = sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
			} else {
				d, err := bal.Distribute(pm, topo, w, prev[c])
				if err != nil {
					t.Fatalf("pair %d chain %d: %v", p, c, err)
				}
				ds[c] = d
			}
		}
		fa, fb := 1+2*p, 2+2*p
		ftA, ftB, err := m.EncodeInterFramePair(
			PairInput{Frame: fa, Chain: 0, W: w, D: ds[0], PrevSigmaR: prev[0]},
			PairInput{Frame: fb, Chain: 1, W: w, D: ds[1], PrevSigmaR: prev[1]},
			pm)
		if err != nil {
			t.Fatalf("pair %d (frames %d,%d): %v", p, fa, fb, err)
		}
		prev[0], prev[1] = ds[0].SigmaR, ds[1].SigmaR
		out = append(out, [2]FrameTiming{ftA, ftB})
	}
	return out
}

// TestPairTimingOnlySchedules exercises the joint two-frame schedule in
// timing-only mode with the invariant checker and telemetry armed: every
// pair must satisfy the per-frame sync-point ordering, share one
// makespan that covers both frames, and feed the performance model.
func TestPairTimingOnlySchedules(t *testing.T) {
	m := &Manager{Platform: device.SysHK(), Mode: TimingOnly,
		Check: true, Telemetry: telemetry.New(nil)}
	pairs := runPairs(t, m, wl1080p(32, 1), 8)
	for p, pr := range pairs {
		ftA, ftB := pr[0], pr[1]
		for _, ft := range pr {
			if !(ft.Tau1 > 0 && ft.Tau1 <= ft.Tau2 && ft.Tau2 <= ft.Tot) {
				t.Fatalf("pair %d frame %d: τ1=%v τ2=%v τtot=%v out of order", p, ft.Frame, ft.Tau1, ft.Tau2, ft.Tot)
			}
			if ft.PairMakespan < ft.Tot {
				t.Fatalf("pair %d frame %d: makespan %v below τtot %v", p, ft.Frame, ft.PairMakespan, ft.Tot)
			}
			if len(ft.Spans) == 0 {
				t.Fatalf("pair %d frame %d: no spans recorded", p, ft.Frame)
			}
			if ft.ModuleTime[sched.ModME] <= 0 || ft.ModuleTime[sched.ModRStar] <= 0 {
				t.Fatalf("pair %d frame %d: module times missing: %v", p, ft.Frame, ft.ModuleTime)
			}
		}
		if ftA.PairMakespan != ftB.PairMakespan {
			t.Fatalf("pair %d: frames report different makespans %v vs %v", p, ftA.PairMakespan, ftB.PairMakespan)
		}
		if ftA.Chain != 0 || ftB.Chain != 1 {
			t.Fatalf("pair %d: chains %d/%d, want 0/1", p, ftA.Chain, ftB.Chain)
		}
	}
	// The joint schedule interleaves but never reorders a frame's own
	// dependency structure, so the pair can't be slower than its slowest
	// member by more than the partner's full span.
	last := pairs[len(pairs)-1]
	if last[0].PairMakespan > last[0].Tot+last[1].Tot {
		t.Fatalf("joint makespan %v exceeds back-to-back bound %v", last[0].PairMakespan, last[0].Tot+last[1].Tot)
	}
}

// TestPairCPUOnlyPlatform covers the joint schedule's cooperative R*
// tail: with no GPU, R* runs sliced across the surviving cores instead of
// as one exclusive kernel, for both frames of the pair.
func TestPairCPUOnlyPlatform(t *testing.T) {
	m := &Manager{Platform: device.CPUOnly("CPU_H", device.CPUHaswellCore(), 4), Mode: TimingOnly}
	pairs := runPairs(t, m, wl1080p(32, 1), 3)
	for p, pr := range pairs {
		for _, ft := range pr {
			if !(ft.Tau1 > 0 && ft.Tau1 <= ft.Tau2 && ft.Tau2 <= ft.Tot && ft.Tot <= ft.PairMakespan) {
				t.Fatalf("pair %d frame %d: sync points out of order: %+v", p, ft.Frame, ft)
			}
			if ft.ModuleTime[sched.ModRStar] <= 0 {
				t.Fatalf("pair %d frame %d: cooperative R* time missing", p, ft.Frame)
			}
		}
	}
}

// TestPairCheckObserveMode mirrors TestCheckObserveMode for the pair
// path: a tampered distribution fails the pair under the fatal checker
// but only increments the violation counter in observe mode.
func TestPairCheckObserveMode(t *testing.T) {
	pl := device.SysHK()
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	w := wl1080p(32, 1)
	good := sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
	bad := sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
	bad.Sigma[0] = w.Rows() // breaks the checker's σ accounting

	run := func(m *Manager) error {
		pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
		_, _, err := m.EncodeInterFramePair(
			PairInput{Frame: 1, Chain: 0, W: w, D: bad},
			PairInput{Frame: 2, Chain: 1, W: w, D: good},
			pm)
		return err
	}
	if err := run(&Manager{Platform: pl, Mode: TimingOnly, Check: true}); err == nil {
		t.Fatal("broken pair distribution passed the fatal checker")
	}
	tel := telemetry.New(nil)
	if err := run(&Manager{Platform: pl, Mode: TimingOnly, Check: true,
		CheckObserve: true, Telemetry: tel}); err != nil {
		t.Fatalf("observe mode must not fail the pair: %v", err)
	}
	if text := tel.Metrics.Expose(); !strings.Contains(text, "feves_check_violations_total") {
		t.Fatalf("violation not counted:\n%s", text)
	}
}

// TestPairInputValidation walks every rejection branch of the pair entry
// point: shared chains, geometry/device mismatches, rows or R* landing on
// an excluded device, and functional mode without a two-chain encoder.
func TestPairInputValidation(t *testing.T) {
	pl := device.SysHK()
	nDev := pl.NumDevices()
	w := wl1080p(32, 1)
	rows := w.Rows()
	pm := sched.NewPerfModel(nDev, 0.8)
	good := sched.Equidistant(nDev, rows, 0)
	in := func(frame, chain int) PairInput {
		return PairInput{Frame: frame, Chain: chain, W: w, D: good}
	}

	m := &Manager{Platform: pl, Mode: TimingOnly}
	if _, _, err := m.EncodeInterFramePair(in(1, 0), in(2, 0), pm); err == nil {
		t.Fatal("pair sharing a chain must be rejected")
	}

	bad := in(1, 0)
	bad.D = sched.Equidistant(3, rows, 0) // platform has 5 devices
	if _, _, err := m.EncodeInterFramePair(bad, in(2, 1), pm); err == nil {
		t.Fatal("device-count mismatch must be rejected")
	}

	down := make([]bool, nDev)
	down[0] = true
	md := &Manager{Platform: pl, Mode: TimingOnly, Down: down}
	if _, _, err := md.EncodeInterFramePair(in(1, 0), in(2, 1), pm); err == nil {
		t.Fatal("rows on an excluded device must be rejected")
	}
	// Zero rows on the excluded device but R* still placed there.
	orphanRStar := in(1, 0)
	orphanRStar.D = sched.EquidistantExcluding(nDev, rows, 0, down)
	if _, _, err := md.EncodeInterFramePair(orphanRStar, in(2, 1), pm); err == nil {
		t.Fatal("R* on an excluded device must be rejected")
	}

	mf := &Manager{Platform: pl, Mode: Functional}
	if _, _, err := mf.EncodeInterFramePair(in(1, 0), in(2, 1), pm); err == nil {
		t.Fatal("functional mode without an encoder must be rejected")
	}
	cfg := codec.Config{Width: 64, Height: 64, SearchRange: 8, NumRF: 1, IQP: 27, PQP: 28}
	single, err := codec.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mf.Enc = single
	geo := in(1, 0)
	geo.CF = h264.NewFrame(64, 64) // 4×4 MBs against the 1080p workload
	if _, _, err := mf.EncodeInterFramePair(geo, in(2, 1), pm); err == nil {
		t.Fatal("frame/workload geometry mismatch must be rejected")
	}
	cfg.Width, cfg.Height = 1920, 1088
	single, err = codec.NewEncoder(cfg) // Chains defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	mf.Enc = single
	ok := in(1, 0)
	ok.CF = h264.NewFrame(1920, 1088)
	if _, _, err := mf.EncodeInterFramePair(ok, in(2, 1), pm); err == nil {
		t.Fatal("single-chain encoder must be rejected for frame-parallel encoding")
	}
}

// TestPairDeadlineBlamesCulpritFrame pins the cross-frame blame rule: on
// the shared FIFO engines a fault landing on frame B's kernels drags
// frame A's τtot past its budget too, but only frame B's evidence names
// the sick device — so the pair must surface B's DeadlineError, the one
// failover can act on, not A's blameless timeout.
func TestPairDeadlineBlamesCulpritFrame(t *testing.T) {
	pl := device.SysNFF()
	const victim = 9 // frame 9/10 pair: the fault hits frame 10 (slot B)
	pl.Perturb = func(frame, dev int) float64 {
		if dev == 0 && frame == victim+1 {
			return 50
		}
		return 1
	}
	m := &Manager{Platform: pl, Mode: TimingOnly}
	w := wl1080p(32, 1)
	warm := runPairs(t, m, w, 4) // frames 1..8, clean
	clean := warm[3]

	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	d := sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
	budget := &Deadline{Tot: clean[0].PairMakespan * 1.5}
	_, _, err := m.EncodeInterFramePair(
		PairInput{Frame: victim, Chain: 0, W: w, D: d, Deadline: budget},
		PairInput{Frame: victim + 1, Chain: 1, W: w, D: d, Deadline: budget},
		pm)
	var derr *DeadlineError
	if !errors.As(err, &derr) {
		t.Fatalf("got %v, want a DeadlineError", err)
	}
	if len(derr.Blamed) == 0 {
		t.Fatalf("deadline error carries no blame: %v", derr)
	}
	if derr.Blamed[0] != 0 {
		t.Fatalf("blamed device %v, want the perturbed device 0: %v", derr.Blamed, derr)
	}
	if derr.Frame != victim+1 {
		t.Fatalf("blame surfaced on frame %d, want the culprit frame %d: %v", derr.Frame, victim+1, derr)
	}
	if msg := derr.Error(); !strings.Contains(msg, "blaming device(s) 0") {
		t.Fatalf("error message does not name the culprit: %q", msg)
	}
	if msg := (&DeadlineError{Frame: 3, Point: "tau_tot"}).Error(); !strings.Contains(msg, "no single device to blame") {
		t.Fatalf("blameless error message: %q", msg)
	}

	// The task-budget safety net needs no model: any single kernel over
	// the cap fails the pair with the offending device blamed directly.
	pm2 := sched.NewPerfModel(topo.NumDevices(), 0.8)
	tiny := &Deadline{TaskBudget: 1e-12}
	_, _, err = m.EncodeInterFramePair(
		PairInput{Frame: 1, Chain: 0, W: w, D: d, Deadline: tiny},
		PairInput{Frame: 2, Chain: 1, W: w, D: d},
		pm2)
	if !errors.As(err, &derr) {
		t.Fatalf("got %v, want a DeadlineError", err)
	}
	if derr.Point != "task" || len(derr.Blamed) == 0 {
		t.Fatalf("task budget breach reported as %q with blame %v", derr.Point, derr.Blamed)
	}
}

// TestPairFunctionalBitExact is the vcm-layer pair counterpart of
// TestFunctionalCollaborativeBitExact: three frame pairs encoded through
// the joint schedule must produce byte for byte the stream of the
// single-call two-chain reference encoder.
func TestPairFunctionalBitExact(t *testing.T) {
	const wpx, hpx, frames = 64, 64, 7
	cfg := codec.Config{Width: wpx, Height: hpx, SearchRange: 8, NumRF: 2,
		IQP: 27, PQP: 28, Chains: 2}
	src := video.NewSynthetic(wpx, hpx, frames, 7)

	ref, err := codec.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if _, err := ref.EncodeFrame(src.FrameAt(i)); err != nil {
			t.Fatal(err)
		}
	}

	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := device.SysNF()
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	m := &Manager{Platform: pl, Mode: Functional, Enc: enc}
	bal := &sched.LPBalancer{}

	if _, err := enc.EncodeIntraFrame(src.FrameAt(0)); err != nil {
		t.Fatal(err)
	}
	prev := [2][]int{make([]int, topo.NumDevices()), make([]int, topo.NumDevices())}
	for f := 1; f+1 < frames; f += 2 {
		var ins [2]PairInput
		var ds [2]sched.Distribution
		for c := 0; c < 2; c++ {
			w := device.Workload{MBW: wpx / 16, MBH: hpx / 16, SA: 16, NumRF: cfg.NumRF,
				UsableRF: min(enc.DPBLenOn(c), cfg.NumRF)}
			if !pm.Ready() {
				ds[c] = sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
			} else {
				d, err := bal.Distribute(pm, topo, w, prev[c])
				if err != nil {
					t.Fatal(err)
				}
				ds[c] = d
			}
			ins[c] = PairInput{Frame: f + c, Chain: c, W: w, D: ds[c],
				PrevSigmaR: prev[c], CF: src.FrameAt(f + c)}
		}
		ftA, ftB, err := m.EncodeInterFramePair(ins[0], ins[1], pm)
		if err != nil {
			t.Fatalf("pair %d,%d: %v", f, f+1, err)
		}
		if ftA.Stats.Bits <= 0 || ftB.Stats.Bits <= 0 {
			t.Fatalf("pair %d,%d: functional stats missing", f, f+1)
		}
		prev[0], prev[1] = ds[0].SigmaR, ds[1].SigmaR
	}

	a, b := ref.Bitstream(), enc.Bitstream()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bitstreams diverge at byte %d", i)
		}
	}
	if !ref.LastRecon().Equal(enc.LastRecon()) {
		t.Fatal("reconstructions differ")
	}
}

// TestPairSceneCutAbortsFrameB splices a hard scene change onto a pair's
// first slot: frame A must come back as a completed intra frame with
// ErrPairSceneCut, frame B untouched — and the encoder must be left in a
// state from which encoding simply continues.
func TestPairSceneCutAbortsFrameB(t *testing.T) {
	const wpx, hpx = 64, 64
	cfg := codec.Config{Width: wpx, Height: hpx, SearchRange: 8, NumRF: 1,
		IQP: 27, PQP: 28, Chains: 2, SceneCutThreshold: 8}
	calm := video.NewSynthetic(wpx, hpx, 6, 7)
	burst := video.NewSynthetic(wpx, hpx, 6, 977)
	frameAt := func(i int) *h264.Frame {
		if i >= 3 {
			return burst.FrameAt(i)
		}
		return calm.FrameAt(i)
	}

	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := device.SysNF()
	topo := sched.Topology{NumGPU: pl.NumGPUs(), Cores: pl.Cores}
	pm := sched.NewPerfModel(topo.NumDevices(), 0.8)
	m := &Manager{Platform: pl, Mode: Functional, Enc: enc}
	if _, err := enc.EncodeIntraFrame(frameAt(0)); err != nil {
		t.Fatal(err)
	}
	pair := func(fa, chainA int) (FrameTiming, FrameTiming, error) {
		var ins [2]PairInput
		for c := 0; c < 2; c++ {
			chain := (chainA + c) % 2
			w := device.Workload{MBW: wpx / 16, MBH: hpx / 16, SA: 16, NumRF: cfg.NumRF,
				UsableRF: min(enc.DPBLenOn(chain), cfg.NumRF)}
			ins[c] = PairInput{Frame: fa + c, Chain: chain, W: w,
				D: sched.Equidistant(topo.NumDevices(), w.Rows(), 0), CF: frameAt(fa + c)}
		}
		return m.EncodeInterFramePair(ins[0], ins[1], pm)
	}

	if _, _, err := pair(1, 0); err != nil {
		t.Fatalf("calm pair: %v", err)
	}
	ftA, ftB, err := pair(3, 0)
	if !errors.Is(err, ErrPairSceneCut) {
		t.Fatalf("got %v, want ErrPairSceneCut", err)
	}
	if !ftA.Stats.Intra {
		t.Fatal("scene-cut frame A not reported as intra")
	}
	if ftB.Tot != 0 || ftB.Stats.Bits != 0 {
		t.Fatalf("aborted frame B carries results: %+v", ftB)
	}
	// The cut reseeded every chain from the new IDR; the next pair picks
	// up with frame 4 on chain 0 (lastIntra is now 3) and must succeed.
	if n := enc.DPBLenOn(0); n != 1 {
		t.Fatalf("chain 0 holds %d references after the cut, want 1", n)
	}
	if _, _, err := pair(4, 0); err != nil {
		t.Fatalf("pair after scene cut: %v", err)
	}
}
