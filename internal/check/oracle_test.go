package check

import (
	"testing"

	"feves/internal/device"
	"feves/internal/sched"
)

// synthModel builds a fully characterized deterministic model: per-device
// compute speeds and (for accelerators) transfer speeds varied by a small
// seed so the oracle sweep covers GPU-favoured, CPU-favoured and balanced
// instances.
func synthModel(topo sched.Topology, w device.Workload, seed int) *sched.PerfModel {
	p := topo.NumDevices()
	pm := sched.NewPerfModel(p, 1)
	for i := 0; i < p; i++ {
		// base in {1.0, 1.37, 1.74, 2.11, 2.48}, device- and seed-dependent.
		base := 1.0 + 0.37*float64((i*7+seed*3)%5)
		if !topo.IsGPU(i) {
			base *= 4 // cores are slower than accelerators, as in the paper
		}
		pm.ObserveCompute(i, sched.ModME, 1, w.UsableRF, 3e-3*base*float64(w.UsableRF))
		pm.ObserveCompute(i, sched.ModINT, 1, w.UsableRF, 1e-3*base)
		pm.ObserveCompute(i, sched.ModSME, 1, w.UsableRF, 2e-3*base*float64(w.UsableRF))
		pm.ObserveCompute(i, sched.ModRStar, 1, w.UsableRF, 4e-3*base*float64(w.Rows()))
		if topo.IsGPU(i) {
			tbase := 1.0 + 0.21*float64((i*5+seed)%4)
			for t := sched.CFh2d; t <= sched.MVd2h; t++ {
				pm.ObserveTransfer(i, t, 1, 1e-4*tbase*float64(t+1))
			}
		}
	}
	return pm
}

func tinyWorkload(rows int) device.Workload {
	return device.Workload{MBW: 4, MBH: rows, SA: 8, NumRF: 1, UsableRF: 1}
}

// TestLPMatchesBruteForceOracle is the optimality cross-check: on every
// topology of at most 3 devices and every frame of at most 8 MB rows, the
// LP balancer's distribution (re-scored with PredictTimes) must be within
// integer-rounding tolerance of the exhaustively enumerated optimum, and
// the enumerated optimum must never beat a bound the LP claims to satisfy.
func TestLPMatchesBruteForceOracle(t *testing.T) {
	topos := []sched.Topology{
		{NumGPU: 1, Cores: 0},
		{NumGPU: 2, Cores: 0},
		{NumGPU: 3, Cores: 0},
		{NumGPU: 0, Cores: 2},
		{NumGPU: 0, Cores: 3},
		{NumGPU: 1, Cores: 1},
		{NumGPU: 1, Cores: 2},
		{NumGPU: 2, Cores: 1},
	}
	allRows := []int{1, 2, 3, 4, 5, 6, 7, 8}
	seeds := []int{1, 2}
	if testing.Short() {
		allRows = []int{1, 3, 5, 8}
		seeds = []int{1}
	}
	for _, topo := range topos {
		p := topo.NumDevices()
		for _, rows := range allRows {
			for _, seed := range seeds {
				w := tinyWorkload(rows)
				pm := synthModel(topo, w, seed)
				prev := make([]int, p)

				bal := &sched.LPBalancer{}
				d, err := bal.Distribute(pm, topo, w, prev)
				if err != nil {
					t.Fatalf("topo %+v rows %d seed %d: LP: %v", topo, rows, seed, err)
				}
				if err := Distribution(topo, w, d, pm); err != nil {
					t.Errorf("topo %+v rows %d seed %d: LP distribution rejected: %v", topo, rows, seed, err)
				}
				_, _, lpTot := sched.PredictTimes(pm, topo, w, d, prev)

				od, best := BruteForceOptimum(pm, topo, w, d.RStarDev, prev)
				if err := Distribution(topo, w, od, pm); err != nil {
					t.Errorf("topo %+v rows %d seed %d: oracle distribution rejected: %v", topo, rows, seed, err)
				}
				// The LP's integer solution is one of the oracle's candidates
				// (its converged Δ equals MSBounds/LSBounds of its rounded
				// rows), so the enumerated optimum can never be worse.
				if best > lpTot+1e-9 {
					t.Errorf("topo %+v rows %d seed %d: oracle τtot %.6g worse than LP's %.6g",
						topo, rows, seed, best, lpTot)
				}
				tol := RoundingTolerance(pm, topo, w)
				if lpTot > best+tol {
					t.Errorf("topo %+v rows %d seed %d: LP τtot %.6g exceeds oracle %.6g + rounding tolerance %.3g",
						topo, rows, seed, lpTot, best, tol)
				}
			}
		}
	}
}

// TestBruteForceOptimumIsExhaustive pins the enumeration itself: on a
// 2-device instance the oracle must score every (m, l, s) composition, so
// its optimum can only improve when the row count shrinks the search space
// to something directly checkable.
func TestBruteForceOptimumIsExhaustive(t *testing.T) {
	topo := sched.Topology{NumGPU: 1, Cores: 1}
	w := tinyWorkload(2)
	pm := synthModel(topo, w, 1)
	prev := make([]int, 2)
	rstar := sched.PlaceRStar(pm, topo, w.Rows())

	_, best := BruteForceOptimum(pm, topo, w, rstar, prev)
	// Re-enumerate by hand and confirm no candidate beats the oracle.
	for m0 := 0; m0 <= 2; m0++ {
		for l0 := 0; l0 <= 2; l0++ {
			for s0 := 0; s0 <= 2; s0++ {
				d := sched.Distribution{
					M: []int{m0, 2 - m0}, L: []int{l0, 2 - l0}, S: []int{s0, 2 - s0},
					RStarDev: rstar,
				}
				d.DeltaM = sched.MSBounds(d.M, d.S, topo.IsGPU)
				d.DeltaL = sched.LSBounds(d.L, d.S, topo.IsGPU)
				_, _, tot := sched.PredictTimes(pm, topo, w, d, prev)
				if tot < best-1e-12 {
					t.Fatalf("hand-enumerated candidate m=%d l=%d s=%d beats oracle: %.6g < %.6g",
						m0, l0, s0, tot, best)
				}
			}
		}
	}
}

func TestCompositions(t *testing.T) {
	got := compositions(2, 2)
	want := [][]int{{0, 2}, {1, 1}, {2, 0}}
	if len(got) != len(want) {
		t.Fatalf("compositions(2,2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("compositions(2,2) = %v, want %v", got, want)
		}
	}
	// C(rows+p-1, p-1) candidates: rows=8, p=3 → C(10,2) = 45.
	if n := len(compositions(8, 3)); n != 45 {
		t.Fatalf("compositions(8,3) has %d entries, want 45", n)
	}
	for _, c := range compositions(8, 3) {
		if c[0]+c[1]+c[2] != 8 {
			t.Fatalf("composition %v does not sum to 8", c)
		}
	}
	if n := len(compositions(5, 1)); n != 1 {
		t.Fatalf("compositions(5,1) has %d entries, want 1", n)
	}
}
