package check

// Pair-mode validation: with frame-parallel encoding two inter frames are
// in flight on one simulated timeline, and a new class of cross-frame
// invariants appears on top of the per-frame ones Frame asserts:
//
//   - pair.chain-distinct: two frames whose executions overlap in time
//     must predict from different reference chains — same-chain frames
//     have a DPB data dependency (frame N reads the reconstruction frame
//     N−1 pushes) and may not coexist;
//   - pair.cross-chain-start: when both frames are on the same chain
//     (the serial fallback), the later frame may not start any work
//     before the earlier frame's τtot — its references do not exist yet;
//   - pair.resource-overlap: the simulated compute and copy engines are
//     serial across frames too, so no task of one frame may overlap a
//     task of the other on the same resource.

// PairExec is one frame's execution evidence for cross-frame validation:
// its display-order index, the reference chain it predicts from, the
// executed spans, and its τtot — all on the pair's shared timeline.
type PairExec struct {
	Frame int
	Chain int
	Spans []Span
	Tot   float64
}

// window returns the time interval covered by the frame's spans.
func (e *PairExec) window() (lo, hi float64, ok bool) {
	if len(e.Spans) == 0 {
		return 0, 0, false
	}
	lo, hi = e.Spans[0].Start, e.Spans[0].End
	for _, s := range e.Spans[1:] {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
	}
	return lo, hi, true
}

// Pair validates the cross-frame invariants of two frames executed with
// overlapping lifetimes on one simulated timeline. It does not re-run the
// per-frame validation — callers check each frame with Frame as usual and
// Pair on top.
func Pair(a, b PairExec) error {
	var vs violations
	aLo, aHi, aOK := a.window()
	bLo, bHi, bOK := b.window()
	if !aOK || !bOK {
		return nil // timing-only evidence absent; nothing to assert
	}

	overlap := aLo < bHi-eps && bLo < aHi-eps
	if a.Chain == b.Chain {
		// Serial fallback on one chain: the later frame's references are
		// the earlier frame's outputs, so nothing may start before the
		// earlier frame completes at its τtot.
		first, second := a, b
		sLo := bLo
		if b.Frame < a.Frame {
			first, second = b, a
			sLo = aLo
		}
		if sLo < first.Tot-eps {
			vs.addf("pair.cross-chain-start",
				"frame %d starts at %.6g before same-chain frame %d completes at τtot %.6g (chain %d DPB not ready)",
				second.Frame, sLo, first.Frame, first.Tot, first.Chain)
		}
		if overlap {
			vs.addf("pair.chain-distinct",
				"frames %d and %d overlap in time ([%.6g,%.6g) vs [%.6g,%.6g)) but share reference chain %d",
				a.Frame, b.Frame, aLo, aHi, bLo, bHi, a.Chain)
		}
		return vs.err()
	}

	// Distinct chains: lifetimes may overlap freely, but each simulated
	// resource is still a serial engine — no task of one frame may
	// overlap a task of the other on the same resource.
	if overlap {
		byRes := map[string][]Span{}
		for _, s := range a.Spans {
			if s.End-s.Start > eps {
				byRes[s.Resource] = append(byRes[s.Resource], s)
			}
		}
		for _, s := range b.Spans {
			if s.End-s.Start <= eps {
				continue
			}
			for _, t := range byRes[s.Resource] {
				if t.Start < s.End-eps && s.Start < t.End-eps {
					vs.addf("pair.resource-overlap",
						"frame %d task %s and frame %d task %s overlap on %s ([%.6g,%.6g) vs [%.6g,%.6g))",
						a.Frame, t.Label, b.Frame, s.Label, s.Resource, t.Start, t.End, s.Start, s.End)
				}
			}
		}
	}
	return vs.err()
}
