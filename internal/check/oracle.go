package check

import (
	"math"

	"feves/internal/device"
	"feves/internal/sched"
)

// BruteForceOptimum enumerates every integer distribution of the frame's
// macroblock rows over the topology's devices — all compositions of the m,
// l and s vectors independently — evaluates each candidate's τtot with
// sched.PredictTimes under the data-reuse Δ terms (MS_BOUNDS/LS_BOUNDS),
// and returns the true optimum. R* stays on the given device, matching the
// balancer's PlaceRStar choice, so the comparison isolates Algorithm 2's
// row-distribution LP.
//
// The search space is (C(rows+p-1, p-1))³ candidates, which is why the
// oracle is only meant for tiny instances (≤3 devices, ≤8 rows ≈ 10⁵
// candidates); there it certifies that the LP balancer's solution is
// optimal up to integer rounding.
func BruteForceOptimum(pm *sched.PerfModel, topo sched.Topology, w device.Workload,
	rstar int, prevSigmaR []int) (sched.Distribution, float64) {

	p := topo.NumDevices()
	rows := w.Rows()
	comps := compositions(rows, p)

	best := math.Inf(1)
	var bestD sched.Distribution
	d := sched.Distribution{RStarDev: rstar}
	for _, m := range comps {
		d.M = m
		for _, l := range comps {
			d.L = l
			for _, s := range comps {
				d.S = s
				d.DeltaM = sched.MSBounds(m, s, topo.IsGPU)
				d.DeltaL = sched.LSBounds(l, s, topo.IsGPU)
				t1, t2, tot := sched.PredictTimes(pm, topo, w, d, prevSigmaR)
				if tot < best {
					best = tot
					bestD = sched.Distribution{
						M:        append([]int(nil), m...),
						L:        append([]int(nil), l...),
						S:        append([]int(nil), s...),
						DeltaM:   append([]int(nil), d.DeltaM...),
						DeltaL:   append([]int(nil), d.DeltaL...),
						RStarDev: rstar,
						PredTau1: t1, PredTau2: t2, PredTot: tot,
					}
				}
			}
		}
	}
	// Complete the optimum with the σ/σʳ split of constraints (14)/(15) so
	// the returned distribution passes the static validator.
	bestD.Sigma = make([]int, p)
	bestD.SigmaR = make([]int, p)
	slack := bestD.PredTot - bestD.PredTau2
	for i := 0; i < p; i++ {
		if !topo.IsGPU(i) || i == rstar {
			continue
		}
		missing := rows - bestD.L[i] - bestD.DeltaL[i]
		bestD.Sigma[i], bestD.SigmaR[i] = sched.SigmaSplit(missing, slack, pm.T(i, sched.SFh2d))
	}
	return bestD, best
}

// compositions lists every way to write rows as an ordered sum of p
// non-negative integers.
func compositions(rows, p int) [][]int {
	if p == 1 {
		return [][]int{{rows}}
	}
	var out [][]int
	cur := make([]int, p)
	var rec func(idx, left int)
	rec = func(idx, left int) {
		if idx == p-1 {
			cur[idx] = left
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := 0; v <= left; v++ {
			cur[idx] = v
			rec(idx+1, left-v)
		}
	}
	rec(0, rows)
	return out
}

// RoundingTolerance bounds how much τtot may move when the LP's fractional
// solution is rounded to integer rows: a few rows' worth of the most
// expensive per-row chain (compute plus every transfer the device's
// constraints charge per row).
func RoundingTolerance(pm *sched.PerfModel, topo sched.Topology, w device.Workload) float64 {
	worst := 0.0
	for i := 0; i < topo.NumDevices(); i++ {
		per := pm.KAt(i, sched.ModME, w.UsableRF) + pm.K(i, sched.ModINT) + pm.KAt(i, sched.ModSME, w.UsableRF)
		if topo.IsGPU(i) {
			per += pm.T(i, sched.CFh2d) + pm.T(i, sched.RFh2d) + pm.T(i, sched.RFd2h) +
				2*pm.T(i, sched.SFh2d) + pm.T(i, sched.SFd2h) +
				2*(pm.T(i, sched.MVh2d)+pm.T(i, sched.MVd2h))
		}
		if per > worst {
			worst = per
		}
	}
	return 3 * worst
}
