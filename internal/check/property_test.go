// Randomized property harness: hundreds of simulated frames across random
// platforms, geometries, balancers and load perturbations, every one
// executed with the schedule invariant checker armed. Any violation fails
// with the instance parameters and the harness seed, so a failure replays
// exactly with FEVES_CHECK_SEED=<seed> go test ./internal/check.
//
// This lives in an external test package because the validator itself is
// imported by vcm: check_test may close the loop through core without
// creating an import cycle.
package check_test

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"feves/internal/core"
	"feves/internal/h264/codec"
	"feves/internal/platforms"
	"feves/internal/sched"
	"feves/internal/vcm"
)

func harnessSeed(t *testing.T) int64 {
	s := os.Getenv("FEVES_CHECK_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("FEVES_CHECK_SEED=%q: %v", s, err)
	}
	return v
}

func TestPropertyRandomSchedulesSatisfyInvariants(t *testing.T) {
	seed := harnessSeed(t)
	rng := rand.New(rand.NewSource(seed))
	t.Logf("harness seed %d (replay failures with FEVES_CHECK_SEED=%d)", seed, seed)

	names := platforms.Names()
	instances, framesPer := 24, 14
	if testing.Short() {
		instances = 8
	}

	rowChoices := []int{8, 17, 34, 68}
	mbwChoices := []int{20, 60, 120}
	saChoices := []int{16, 32, 64}

	totalInter := 0
	for run := 0; run < instances; run++ {
		name := names[rng.Intn(len(names))]
		pl, err := platforms.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		pl.Seed = uint64(rng.Int63())
		rows := rowChoices[rng.Intn(len(rowChoices))]
		mbw := mbwChoices[rng.Intn(len(mbwChoices))]
		sa := saChoices[rng.Intn(len(saChoices))]
		rf := 1 + rng.Intn(3)

		bals := []sched.Balancer{
			&sched.LPBalancer{},
			&sched.LPBalancer{NoReuse: true},
			&sched.LPBalancer{Hysteresis: 0.03},
			sched.EquidistantBalancer{},
			sched.ProportionalBalancer{},
		}
		if pl.NumGPUs() >= 1 && pl.Cores >= 1 {
			bals = append(bals, sched.MEOffloadBalancer{})
		}
		bal := bals[rng.Intn(len(bals))]

		// Half the instances suffer a Fig. 7-style load event: one device
		// slows by 1.5–4.5× for a window of inter frames, so the harness
		// also covers schedules produced from a drifting model.
		if rng.Intn(2) == 1 {
			slowDev := rng.Intn(pl.NumDevices())
			factor := 1.5 + 3*rng.Float64()
			from := 4 + rng.Intn(4)
			to := from + 2 + rng.Intn(4)
			pl.Perturb = func(frame, dev int) float64 {
				if dev == slowDev && frame >= from && frame < to {
					return factor
				}
				return 1
			}
		}

		fw, err := core.New(core.Options{
			Platform: pl,
			Codec: codec.Config{Width: mbw * 16, Height: rows * 16,
				SearchRange: sa / 2, NumRF: rf, IQP: 27, PQP: 28},
			Mode:           vcm.TimingOnly,
			Balancer:       bal,
			Alpha:          0.5 + 0.5*rng.Float64(),
			CheckSchedules: true,
		})
		if err != nil {
			t.Fatalf("seed %d run %d: %v", seed, run, err)
		}
		for f := 0; f < framesPer; f++ {
			if _, err := fw.EncodeNext(nil); err != nil {
				t.Fatalf("seed %d run %d (%s, %d rows, %d MB wide, SA %d, %d RF, balancer %s): frame %d: %v\nreplay with FEVES_CHECK_SEED=%d",
					seed, run, name, rows, mbw, sa, rf, bal.Name(), f, err, seed)
			}
		}
		totalInter += framesPer - 1 // the first frame is intra
	}
	if !testing.Short() && totalInter < 200 {
		t.Fatalf("harness executed only %d inter frames, want ≥ 200", totalInter)
	}
	t.Logf("%d inter frames validated across %d random instances", totalInter, instances)
}

// TestPropertyFrameParallelSchedulesSatisfyInvariants is the harness's
// frame-parallel arm: random instances drive EncodePair with the checker
// armed, so every joint schedule is validated against both the per-frame
// Algorithm-2 invariants and the cross-frame pair rules (disjoint chains,
// no cross-frame dependency violations on the shared engines). Random
// IntraPeriods force pairs to break and re-form across IDR boundaries,
// and load perturbations cover pairing under a drifting model. Failures
// replay with FEVES_CHECK_SEED=<seed>.
func TestPropertyFrameParallelSchedulesSatisfyInvariants(t *testing.T) {
	seed := harnessSeed(t)
	rng := rand.New(rand.NewSource(seed + 1))
	t.Logf("harness seed %d (replay failures with FEVES_CHECK_SEED=%d)", seed, seed)

	names := platforms.Names()
	instances, framesPer := 20, 20
	if testing.Short() {
		instances = 6
	}

	rowChoices := []int{8, 17, 34, 68}
	mbwChoices := []int{20, 60, 120}
	saChoices := []int{16, 32, 64}

	totalInter, totalPaired := 0, 0
	for run := 0; run < instances; run++ {
		name := names[rng.Intn(len(names))]
		pl, err := platforms.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		pl.Seed = uint64(rng.Int63())
		rows := rowChoices[rng.Intn(len(rowChoices))]
		mbw := mbwChoices[rng.Intn(len(mbwChoices))]
		sa := saChoices[rng.Intn(len(saChoices))]
		rf := 1 + rng.Intn(3)
		intraPeriod := 0
		if rng.Intn(3) == 0 {
			intraPeriod = 5 + rng.Intn(6)
		}

		bals := []sched.Balancer{
			&sched.LPBalancer{},
			&sched.LPBalancer{NoReuse: true},
			&sched.LPBalancer{Hysteresis: 0.03},
			sched.EquidistantBalancer{},
			sched.ProportionalBalancer{},
		}
		if pl.NumGPUs() >= 1 && pl.Cores >= 1 {
			bals = append(bals, sched.MEOffloadBalancer{})
		}
		bal := bals[rng.Intn(len(bals))]

		if rng.Intn(2) == 1 {
			slowDev := rng.Intn(pl.NumDevices())
			factor := 1.5 + 3*rng.Float64()
			from := 4 + rng.Intn(4)
			to := from + 2 + rng.Intn(4)
			pl.Perturb = func(frame, dev int) float64 {
				if dev == slowDev && frame >= from && frame < to {
					return factor
				}
				return 1
			}
		}

		fw, err := core.New(core.Options{
			Platform: pl,
			Codec: codec.Config{Width: mbw * 16, Height: rows * 16,
				SearchRange: sa / 2, NumRF: rf, IQP: 27, PQP: 28,
				IntraPeriod: intraPeriod, Chains: 2},
			Mode:           vcm.TimingOnly,
			Balancer:       bal,
			Alpha:          0.5 + 0.5*rng.Float64(),
			CheckSchedules: true,
			FrameParallel:  true,
		})
		if err != nil {
			t.Fatalf("seed %d run %d: %v", seed, run, err)
		}
		for fw.FramesProcessed() < framesPer {
			f := fw.FramesProcessed()
			_, _, paired, err := fw.EncodePair(nil, nil)
			if err != nil {
				t.Fatalf("seed %d run %d (%s, %d rows, %d MB wide, SA %d, %d RF, intra period %d, balancer %s): frame %d: %v\nreplay with FEVES_CHECK_SEED=%d",
					seed, run, name, rows, mbw, sa, rf, intraPeriod, bal.Name(), f, err, seed)
			}
			if paired {
				totalPaired += 2
			}
		}
		intra := 1
		if intraPeriod > 0 {
			intra = (framesPer + intraPeriod - 1) / intraPeriod
		}
		totalInter += framesPer - intra
	}
	if !testing.Short() {
		if totalInter < 300 {
			t.Fatalf("harness executed only %d inter frames, want ≥ 300", totalInter)
		}
		if totalPaired < totalInter/2 {
			t.Fatalf("only %d of %d inter frames ran paired — the harness is not exercising the pair rules", totalPaired, totalInter)
		}
	}
	t.Logf("%d inter frames validated (%d paired) across %d random instances", totalInter, totalPaired, instances)
}
