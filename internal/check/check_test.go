package check

import (
	"strings"
	"testing"

	"feves/internal/sched"
)

// hasRule reports whether err is a *check.Error containing a violation of
// the given rule.
func hasRule(t *testing.T, err error, rule string) bool {
	t.Helper()
	if err == nil {
		return false
	}
	ce, ok := err.(*Error)
	if !ok {
		t.Fatalf("error is %T, want *check.Error: %v", err, err)
	}
	for _, v := range ce.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		label string
		kind  string
		dev   int
	}{
		{"SME@2", "SME", 2},
		{"ME@0", "ME", 0},
		{"CF.h2d@10", "CF.h2d", 10},
		{"R*@1", "R*", 1},
		{"tau1", "tau1", -1},
		{"weird@x", "weird@x", -1},
	}
	for _, c := range cases {
		kind, dev := kindOf(c.label)
		if kind != c.kind || dev != c.dev {
			t.Errorf("kindOf(%q) = (%q, %d), want (%q, %d)", c.label, kind, dev, c.kind, c.dev)
		}
	}
}

// validDist builds a hand-checked legal distribution on a 1-GPU + 1-core
// topology with 4 rows: rows split 3/1 for ME and INT, 2/2 for SME, so the
// GPU's SME range [0,2) sits inside its ME/INT range [0,3) (Δ = 0).
func validDist(topo sched.Topology) sched.Distribution {
	d := sched.Distribution{
		M: []int{3, 1}, L: []int{3, 1}, S: []int{2, 2},
		RStarDev: 0,
		Sigma:    []int{0, 0}, SigmaR: []int{0, 0},
	}
	d.DeltaM = sched.MSBounds(d.M, d.S, topo.IsGPU)
	d.DeltaL = sched.LSBounds(d.L, d.S, topo.IsGPU)
	return d
}

func TestDistributionAcceptsValid(t *testing.T) {
	topo := sched.Topology{NumGPU: 1, Cores: 1}
	w := tinyWorkload(4)
	if err := Distribution(topo, w, validDist(topo), nil); err != nil {
		t.Fatalf("valid distribution rejected: %v", err)
	}
}

func TestDistributionAcceptsEveryBalancer(t *testing.T) {
	topo := sched.Topology{NumGPU: 2, Cores: 2}
	w := tinyWorkload(8)
	pm := synthModel(topo, w, 1)
	prev := make([]int, topo.NumDevices())
	for _, bal := range []sched.Balancer{
		&sched.LPBalancer{},
		&sched.LPBalancer{NoReuse: true},
		sched.EquidistantBalancer{},
		sched.ProportionalBalancer{},
		sched.MEOffloadBalancer{},
	} {
		d, err := bal.Distribute(pm, topo, w, prev)
		if err != nil {
			t.Fatalf("%s: %v", bal.Name(), err)
		}
		if err := Distribution(topo, w, d, pm); err != nil {
			t.Errorf("%s distribution rejected: %v", bal.Name(), err)
		}
	}
	// The initialization-phase distribution must pass too (σʳ on every
	// device, including the cores, is legal there).
	d := sched.Equidistant(topo.NumDevices(), w.Rows(), 0)
	if err := Distribution(topo, w, d, nil); err != nil {
		t.Errorf("equidistant init distribution rejected: %v", err)
	}
}

func TestDistributionRejections(t *testing.T) {
	topo := sched.Topology{NumGPU: 1, Cores: 1}
	w := tinyWorkload(4)
	cases := []struct {
		name   string
		mutate func(*sched.Distribution)
		rule   string
	}{
		{"short vector", func(d *sched.Distribution) { d.M = d.M[:1] }, "dist.shape"},
		{"bad sum", func(d *sched.Distribution) { d.L = []int{3, 2} }, "dist.sum"},
		{"negative rows", func(d *sched.Distribution) { d.S = []int{5, -1} }, "dist.negative"},
		{"rstar out of range", func(d *sched.Distribution) { d.RStarDev = 7 }, "dist.rstar"},
		{"delta on cpu", func(d *sched.Distribution) { d.DeltaM = []int{0, 1} }, "dist.cpu-delta"},
		{"delta out of range", func(d *sched.Distribution) { d.DeltaM = []int{99, 0} }, "dist.delta-range"},
		{"stale read", func(d *sched.Distribution) {
			// GPU SME range [0,3) no longer covered by ME range [0,1).
			d.M = []int{1, 3}
			d.S = []int{3, 1}
			// DeltaM stays zero → the GPU would read 2 un-fetched rows.
		}, "dist.stale-read"},
		{"stale read with nil delta", func(d *sched.Distribution) {
			d.M = []int{1, 3}
			d.S = []int{3, 1}
			d.DeltaM, d.DeltaL = nil, nil
		}, "dist.stale-read"},
		{"sigma on cpu", func(d *sched.Distribution) { d.Sigma = []int{0, 1} }, "dist.sigma-placement"},
		{"sigma on rstar device", func(d *sched.Distribution) { d.Sigma = []int{1, 0} }, "dist.sigma-placement"},
		{"sigma overrun", func(d *sched.Distribution) {
			d.RStarDev = 1 // R* on the core so the GPU may carry σ/σʳ
			d.Sigma = []int{1, 0}
			d.SigmaR = []int{2, 0} // GPU holds l=3 of 4 rows: misses 1, completes 3
		}, "dist.sigma-overrun"},
		{"negative sigma", func(d *sched.Distribution) { d.SigmaR = []int{0, -2} }, "dist.negative"},
	}
	for _, c := range cases {
		d := validDist(topo)
		c.mutate(&d)
		err := Distribution(topo, w, d, nil)
		if !hasRule(t, err, c.rule) {
			t.Errorf("%s: want violation of %q, got %v", c.name, c.rule, err)
		}
	}
}

func TestDistributionSigmaSlack(t *testing.T) {
	topo := sched.Topology{NumGPU: 1, Cores: 1}
	w := tinyWorkload(4)
	pm := synthModel(topo, w, 1)
	// R* on the core; the GPU interpolated 1 of 4 rows so it misses 3 SF
	// rows, all scheduled as σ.
	d := sched.Distribution{
		M: []int{3, 1}, L: []int{1, 3}, S: []int{2, 2},
		RStarDev: 1,
		Sigma:    []int{3, 0}, SigmaR: []int{0, 0},
	}
	d.DeltaM = sched.MSBounds(d.M, d.S, topo.IsGPU)
	d.DeltaL = sched.LSBounds(d.L, d.S, topo.IsGPU)
	d.PredTau2 = 1.0
	d.PredTot = 1.0 + 0.5*pm.T(0, sched.SFh2d) // slack fits half a row
	if err := Distribution(topo, w, d, pm); !hasRule(t, err, "dist.sigma-slack") {
		t.Fatalf("want dist.sigma-slack, got %v", err)
	}
	// With enough slack the same σ passes.
	d.PredTot = 1.0 + 10*pm.T(0, sched.SFh2d)
	if err := Distribution(topo, w, d, pm); err != nil {
		t.Fatalf("σ fitting the slack rejected: %v", err)
	}
}

// frameSpans builds a minimal legal timeline on the GPU of a 1-GPU + 1-core
// topology: wave-1 kernels and outputs before τ1, SME and the R* MC
// prefetches in [τ1, τ2], the best-MV prefetch and R* after τ2.
func frameSpans() ([]Span, float64, float64, float64) {
	tau1, tau2, tot := 1.0, 2.0, 3.0
	spans := []Span{
		{Resource: "gpu0", Label: "ME@0", Start: 0, End: 0.5},
		{Resource: "gpu0", Label: "INT@0", Start: 0.5, End: 0.9},
		{Resource: "gpu0.h2d", Label: "CF.h2d@0", Start: 0, End: 0.2},
		{Resource: "gpu0.d2h", Label: "MV.d2h@0", Start: 0.5, End: 0.7},
		{Resource: "host", Label: "tau1", Start: tau1, End: tau1},
		{Resource: "gpu0", Label: "SME@0", Start: tau1, End: 1.8},
		{Resource: "host", Label: "tau2", Start: tau2, End: tau2},
		{Resource: "gpu0", Label: "R*@0", Start: 2.2, End: tot},
		{Resource: "cpu0", Label: "ME@1", Start: 0, End: 0.8},
		{Resource: "cpu0", Label: "SME@1", Start: tau1, End: 1.9},
		{Resource: "gpu0.h2d", Label: "CF.h2d@0", Start: 1.2, End: 1.4}, // MC prefetch
		{Resource: "gpu0.h2d", Label: "SF.h2d@0", Start: 1.4, End: 1.6}, // MC prefetch
		{Resource: "gpu0.h2d", Label: "MV.h2d@0", Start: 2.0, End: 2.2}, // best-MV prefetch
	}
	return spans, tau1, tau2, tot
}

func TestFrameAcceptsValidTimeline(t *testing.T) {
	topo := sched.Topology{NumGPU: 1, Cores: 1}
	w := tinyWorkload(4)
	spans, tau1, tau2, tot := frameSpans()
	if err := Frame(topo, w, validDist(topo), nil, spans, tau1, tau2, tot); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
}

func TestTimelineRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(spans []Span) ([]Span, float64, float64, float64)
		rule   string
	}{
		{"tau out of order", func(s []Span) ([]Span, float64, float64, float64) {
			return s, 2.5, 2.0, 3.0
		}, "time.order"},
		{"span ends before start", func(s []Span) ([]Span, float64, float64, float64) {
			s[0].End = -0.5
			return s, 1, 2, 3
		}, "time.span"},
		{"task after makespan", func(s []Span) ([]Span, float64, float64, float64) {
			s[7].End = 3.5
			return s, 1, 2, 3
		}, "time.makespan"},
		{"ME past tau1", func(s []Span) ([]Span, float64, float64, float64) {
			s[0].End = 1.2
			return s, 1, 2, 3
		}, "time.me-past-tau1"},
		{"INT past tau1", func(s []Span) ([]Span, float64, float64, float64) {
			s[1].End = 1.1
			return s, 1, 2, 3
		}, "time.int-past-tau1"},
		{"SME before tau1", func(s []Span) ([]Span, float64, float64, float64) {
			s[5].Start = 0.8
			return s, 1, 2, 3
		}, "time.sme-before-tau1"},
		{"SME past tau2", func(s []Span) ([]Span, float64, float64, float64) {
			s[5].End = 2.2
			return s, 1, 2, 3
		}, "time.sme-past-tau2"},
		{"R* before tau2", func(s []Span) ([]Span, float64, float64, float64) {
			s[7].Start = 1.5
			return s, 1, 2, 3
		}, "time.rstar-before-tau2"},
		{"MV output spans tau1", func(s []Span) ([]Span, float64, float64, float64) {
			s[3].End = 1.3
			return s, 1, 2, 3
		}, "time.output-past-tau1"},
		{"double booked resource", func(s []Span) ([]Span, float64, float64, float64) {
			s[1].Start = 0.2 // INT overlaps ME on gpu0
			return s, 1, 2, 3
		}, "time.overlap"},
		{"SF upload straddles tau2", func(s []Span) ([]Span, float64, float64, float64) {
			s[11].Start, s[11].End = 1.9, 2.1
			return s, 1, 2, 3
		}, "time.sf-straddle-tau2"},
		{"missing MC prefetch", func(s []Span) ([]Span, float64, float64, float64) {
			return append(s[:10], s[11:]...), 1, 2, 3 // drop the CF MC prefetch
		}, "time.rstar-mc-prefetch"},
		{"MC prefetch past tau2", func(s []Span) ([]Span, float64, float64, float64) {
			s[10].Start, s[10].End = 1.8, 2.4
			return s, 1, 2, 3
		}, "time.rstar-mc-prefetch"},
		{"missing MV prefetch", func(s []Span) ([]Span, float64, float64, float64) {
			return s[:12], 1, 2, 3 // drop the best-MV prefetch
		}, "time.rstar-mv-prefetch"},
		{"MV prefetch lands after R* launch", func(s []Span) ([]Span, float64, float64, float64) {
			s[12].End = 2.5 // R* starts at 2.2
			return s, 1, 2, 3
		}, "time.rstar-mv-prefetch"},
		{"MV prefetch straddles tau2", func(s []Span) ([]Span, float64, float64, float64) {
			s[12].Start = 1.7
			return s, 1, 2, 3
		}, "time.rstar-mv-prefetch"},
	}
	topo := sched.Topology{NumGPU: 1, Cores: 1}
	w := tinyWorkload(4)
	for _, c := range cases {
		spans, _, _, _ := frameSpans()
		spans, tau1, tau2, tot := c.mutate(spans)
		err := Frame(topo, w, validDist(topo), nil, spans, tau1, tau2, tot)
		if !hasRule(t, err, c.rule) {
			t.Errorf("%s: want violation of %q, got %v", c.name, c.rule, err)
		}
	}
}

// TestSigmaWindowRules pins the deferred-SF-completion timeline rules on
// a CPU-centric frame: the GPU misses one SF row, completed as σ in the
// τ2→τtot slack. The promised transfer must appear there — and an SF
// upload in that window without a σ promise is equally illegal.
func TestSigmaWindowRules(t *testing.T) {
	topo := sched.Topology{NumGPU: 1, Cores: 1}
	w := tinyWorkload(4)
	dist := func(sigma int) sched.Distribution {
		d := sched.Distribution{
			M: []int{3, 1}, L: []int{3, 1}, S: []int{2, 2},
			RStarDev: 1, // R* on the core: no R* prefetch rules apply
			Sigma:    []int{sigma, 0}, SigmaR: []int{1 - sigma, 0},
		}
		d.DeltaM = sched.MSBounds(d.M, d.S, topo.IsGPU)
		d.DeltaL = sched.LSBounds(d.L, d.S, topo.IsGPU)
		return d
	}
	tau1, tau2, tot := 1.0, 2.0, 3.0
	spans := func(withSigma bool) []Span {
		s := []Span{
			{Resource: "gpu0", Label: "ME@0", Start: 0, End: 0.5},
			{Resource: "gpu0", Label: "INT@0", Start: 0.5, End: 0.9},
			{Resource: "gpu0", Label: "SME@0", Start: tau1, End: 1.8},
			{Resource: "cpu0", Label: "ME@1", Start: 0, End: 0.8},
			{Resource: "cpu0", Label: "SME@1", Start: tau1, End: 1.9},
			{Resource: "cpu0", Label: "R*@1", Start: tau2, End: tot},
		}
		if withSigma {
			s = append(s, Span{Resource: "gpu0.h2d", Label: "SF.h2d@0", Start: 2.0, End: 2.3})
		}
		return s
	}
	if err := Frame(topo, w, dist(1), nil, spans(true), tau1, tau2, tot); err != nil {
		t.Fatalf("valid σ completion rejected: %v", err)
	}
	if err := Frame(topo, w, dist(1), nil, spans(false), tau1, tau2, tot); !hasRule(t, err, "time.sigma-missing") {
		t.Fatalf("want time.sigma-missing, got %v", err)
	}
	if err := Frame(topo, w, dist(0), nil, spans(true), tau1, tau2, tot); !hasRule(t, err, "time.sigma-unexpected") {
		t.Fatalf("want time.sigma-unexpected, got %v", err)
	}
}

func TestErrorAggregatesViolations(t *testing.T) {
	topo := sched.Topology{NumGPU: 1, Cores: 1}
	w := tinyWorkload(4)
	d := validDist(topo)
	d.M = []int{3, 2}  // bad sum
	d.S = []int{5, -1} // negative entry
	err := Distribution(topo, w, d, nil)
	if err == nil {
		t.Fatal("corrupted distribution accepted")
	}
	ce := err.(*Error)
	if len(ce.Violations) < 2 {
		t.Fatalf("want every violation reported, got %d: %v", len(ce.Violations), err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "dist.sum") || !strings.Contains(msg, "dist.negative") {
		t.Fatalf("error message misses rules: %q", msg)
	}
	if !strings.Contains(msg, "violation(s)") {
		t.Fatalf("error message misses the count: %q", msg)
	}
}

func TestZeroDurationBarriersDoNotOverlap(t *testing.T) {
	// τ barriers share the host resource at identical timestamps; the
	// exclusivity rule must ignore zero-duration tasks.
	spans := []Span{
		{Resource: "host", Label: "tau1", Start: 1, End: 1},
		{Resource: "host", Label: "tau2", Start: 1, End: 1},
		{Resource: "host", Label: "assemble", Start: 0.5, End: 1.5},
	}
	var vs violations
	checkTimeline(&vs, spans, 1, 1, 2)
	if err := vs.err(); err != nil {
		t.Fatalf("zero-duration barriers flagged: %v", err)
	}
}
