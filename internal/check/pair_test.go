package check

import (
	"strings"
	"testing"
)

func pairExec(frame, chain int, spans ...Span) PairExec {
	tot := 0.0
	for _, s := range spans {
		if s.End > tot {
			tot = s.End
		}
	}
	return PairExec{Frame: frame, Chain: chain, Spans: spans, Tot: tot}
}

func rulesOf(t *testing.T, err error) []string {
	t.Helper()
	if err == nil {
		return nil
	}
	ce, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	var rules []string
	for _, v := range ce.Violations {
		rules = append(rules, v.Rule)
	}
	return rules
}

func wantRule(t *testing.T, err error, rule string) {
	t.Helper()
	for _, r := range rulesOf(t, err) {
		if r == rule {
			return
		}
	}
	t.Fatalf("want rule %s, got %v", rule, err)
}

func TestPairDistinctChainsClean(t *testing.T) {
	a := pairExec(1, 0,
		Span{Resource: "gpu0.compute", Label: "ME@0", Start: 0, End: 2},
		Span{Resource: "gpu0.copy", Label: "MV.d2h@0", Start: 2, End: 3})
	b := pairExec(2, 1,
		Span{Resource: "gpu0.compute", Label: "ME@0", Start: 2, End: 4},
		Span{Resource: "gpu0.copy", Label: "MV.d2h@0", Start: 4, End: 5})
	if err := Pair(a, b); err != nil {
		t.Fatalf("overlapping frames on distinct chains and disjoint resource windows: %v", err)
	}
}

func TestPairResourceOverlap(t *testing.T) {
	a := pairExec(1, 0, Span{Resource: "gpu0.compute", Label: "ME@0", Start: 0, End: 3})
	b := pairExec(2, 1, Span{Resource: "gpu0.compute", Label: "SME@0", Start: 2, End: 4})
	wantRule(t, Pair(a, b), "pair.resource-overlap")
}

func TestPairSameChainOverlap(t *testing.T) {
	a := pairExec(1, 0, Span{Resource: "gpu0.compute", Label: "ME@0", Start: 0, End: 3})
	b := pairExec(2, 0, Span{Resource: "gpu1.compute", Label: "ME@1", Start: 1, End: 4})
	err := Pair(a, b)
	wantRule(t, err, "pair.chain-distinct")
	wantRule(t, err, "pair.cross-chain-start")
}

func TestPairSameChainSerialized(t *testing.T) {
	a := pairExec(1, 0, Span{Resource: "gpu0.compute", Label: "ME@0", Start: 0, End: 3})
	b := pairExec(2, 0, Span{Resource: "gpu0.compute", Label: "ME@0", Start: 3, End: 6})
	if err := Pair(a, b); err != nil {
		t.Fatalf("serialized same-chain frames are legal: %v", err)
	}
}

func TestPairOrderIndependent(t *testing.T) {
	a := pairExec(1, 0, Span{Resource: "gpu0.compute", Label: "ME@0", Start: 0, End: 3})
	b := pairExec(2, 0, Span{Resource: "gpu1.compute", Label: "ME@1", Start: 1, End: 4})
	// Argument order must not change which frame is blamed.
	e1, e2 := Pair(a, b), Pair(b, a)
	if e1 == nil || e2 == nil {
		t.Fatal("both orders must flag the same-chain overlap")
	}
	if !strings.Contains(e1.Error(), "frame 2 starts") || !strings.Contains(e2.Error(), "frame 2 starts") {
		t.Fatalf("blame should follow display order:\n%v\n%v", e1, e2)
	}
}
