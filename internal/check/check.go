// Package check is the runtime correctness tooling of the FEVES
// reproduction: an end-to-end validator for the schedules the Load
// Balancer produces and the Video Coding Manager executes, plus a
// brute-force oracle that certifies the LP balancer's optimality on tiny
// instances.
//
// The validator asserts every invariant Algorithm 2 and the Fig. 4
// synchronization structure rely on:
//
//   - constraint (1): the m, l and s vectors are non-negative and each
//     sums to the frame's macroblock rows;
//   - placement rules: CPU cores never carry Δ transfer rows (they read
//     host memory directly), σ completion transfers exist only on
//     accelerators not running R*, and R* is mapped onto a single device;
//   - data-access consistency (constraints (16)/(17)): the Δm/Δl rows a
//     device fetches cover everything its SME range reads beyond what it
//     already holds from its own ME/INT ranges — reuse never reads a row
//     the device does not hold;
//   - constraints (14)/(15): the σ/σʳ split is non-negative and the σ part
//     fits the predicted τ2→τtot slack;
//   - the executed timeline honours the τ1/τ2/τtot dependency ordering: no
//     SME kernel before its ME motion vectors landed at τ1, no R* work
//     before τ2, all wave-1 work and outputs complete by τ1, and no two
//     tasks overlap on the same simulated resource;
//   - the deferred-transfer structure of Fig. 5: SF uploads never straddle
//     τ2 (they are Δl/σʳ/MC-prefetch work completing by τ2 or σ
//     completions starting at it), every σ promised by the distribution
//     appears on the wire in the τ2→τtot slack, and the R* device
//     prefetches its MC inputs inside [τ1, τ2] and its missing best-MV
//     field after τ2 but before the R* kernel launches.
//
// Validation is wired behind vcm.Manager.Check / core.Options.CheckSchedules
// / feves.Config.CheckSchedules and the -check CLI flag, so it runs in
// integration tests and the randomized property harness at zero cost when
// off.
package check

import (
	"fmt"
	"strings"

	"feves/internal/device"
	"feves/internal/sched"
)

// eps absorbs float64 accumulation error in the simulated timestamps.
const eps = 1e-9

// Span is one executed schedule task, mirroring vcm.TaskSpan without
// importing it (vcm imports this package).
type Span struct {
	Resource string
	Label    string
	Start    float64
	End      float64
}

// Violation is one broken invariant. Rule is a stable identifier
// ("dist.sum", "time.sme-before-tau1", ...), Detail the human-readable
// specifics.
type Violation struct {
	Rule   string
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Error aggregates every violation found in one frame so a failure reports
// the complete picture, not just the first broken rule.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.String()
	}
	return fmt.Sprintf("check: %d invariant violation(s): %s",
		len(e.Violations), strings.Join(parts, "; "))
}

// violations collects rule breaches during one validation pass.
type violations struct {
	list []Violation
}

func (vs *violations) addf(rule, format string, args ...interface{}) {
	vs.list = append(vs.list, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

func (vs *violations) err() error {
	if len(vs.list) == 0 {
		return nil
	}
	return &Error{Violations: vs.list}
}

// Distribution validates the static Algorithm-2 invariants of a frame's
// row assignment: constraint (1) row sums and non-negativity, vector
// shapes, the CPU/GPU placement rules for Δ and σ, R* single-device
// placement, and the MS_BOUNDS/LS_BOUNDS data-access consistency. pm may
// be nil; when given, the σ split is additionally checked against the
// predicted τ2→τtot slack (constraints (14)/(15)).
func Distribution(topo sched.Topology, w device.Workload, d sched.Distribution, pm *sched.PerfModel) error {
	var vs violations
	p := topo.NumDevices()
	rows := w.Rows()

	for _, v := range []struct {
		name string
		vec  []int
	}{{"m", d.M}, {"l", d.L}, {"s", d.S}} {
		if len(v.vec) != p {
			vs.addf("dist.shape", "%s has %d entries for %d devices", v.name, len(v.vec), p)
			continue
		}
		sum := 0
		for i, x := range v.vec {
			if x < 0 {
				vs.addf("dist.negative", "%s[%d] = %d", v.name, i, x)
			}
			sum += x
		}
		if sum != rows {
			vs.addf("dist.sum", "%s sums to %d rows, want %d (constraint (1))", v.name, sum, rows)
		}
	}
	if d.RStarDev < 0 || d.RStarDev >= p {
		vs.addf("dist.rstar", "R* device %d out of range [0,%d)", d.RStarDev, p)
		return vs.err() // later rules index by RStarDev
	}
	if len(vs.list) > 0 {
		return vs.err() // later rules assume well-shaped vectors
	}

	// Δ placement and data-access consistency: the Δm/Δl fetched rows must
	// cover the SME range's reads beyond the device's own ME/INT holdings
	// (MS_BOUNDS/LS_BOUNDS, constraints (16)/(17)); CPU cores fetch nothing.
	needM := sched.MSBounds(d.M, d.S, topo.IsGPU)
	needL := sched.LSBounds(d.L, d.S, topo.IsGPU)
	for _, v := range []struct {
		name string
		vec  []int
		need []int
	}{{"Δm", d.DeltaM, needM}, {"Δl", d.DeltaL, needL}} {
		if v.vec == nil {
			continue // non-LP balancers with coinciding ranges omit Δ
		}
		if len(v.vec) != p {
			vs.addf("dist.shape", "%s has %d entries for %d devices", v.name, len(v.vec), p)
			continue
		}
		for i, x := range v.vec {
			switch {
			case x < 0:
				vs.addf("dist.negative", "%s[%d] = %d", v.name, i, x)
			case !topo.IsGPU(i) && x != 0:
				vs.addf("dist.cpu-delta", "CPU core %d carries %s = %d transfer rows", i, v.name, x)
			case x > rows:
				vs.addf("dist.delta-range", "%s[%d] = %d exceeds %d frame rows", v.name, i, x, rows)
			case topo.IsGPU(i) && x < v.need[i]:
				vs.addf("dist.stale-read", "device %d holds %s = %d rows but its SME range reads %d beyond its own (stale-buffer read)",
					i, v.name, x, v.need[i])
			}
		}
	}
	// Δ defaulting to nil is only sound when every SME range coincides with
	// the device's own ME/INT range (equidistant-style splits).
	for _, v := range []struct {
		name string
		vec  []int
		need []int
	}{{"Δm", d.DeltaM, needM}, {"Δl", d.DeltaL, needL}} {
		if v.vec != nil {
			continue
		}
		for i, n := range v.need {
			if n != 0 {
				vs.addf("dist.stale-read", "device %d has no %s vector but its SME range reads %d rows beyond its own",
					i, v.name, n)
			}
		}
	}

	// σ/σʳ placement (constraints (14)/(15)): non-negative, only meaningful
	// on accelerators, σ only off the R* device (which prefetches its SF
	// rows before MC instead), and never completing more rows than the
	// device is missing.
	for _, v := range []struct {
		name string
		vec  []int
	}{{"σ", d.Sigma}, {"σʳ", d.SigmaR}} {
		if v.vec == nil {
			continue
		}
		if len(v.vec) != p {
			vs.addf("dist.shape", "%s has %d entries for %d devices", v.name, len(v.vec), p)
			continue
		}
		for i, x := range v.vec {
			if x < 0 {
				vs.addf("dist.negative", "%s[%d] = %d", v.name, i, x)
			}
			if x > rows {
				vs.addf("dist.sigma-range", "%s[%d] = %d exceeds %d frame rows", v.name, i, x, rows)
			}
		}
	}
	if len(d.Sigma) == p {
		for i, x := range d.Sigma {
			if x > 0 && (!topo.IsGPU(i) || i == d.RStarDev) {
				vs.addf("dist.sigma-placement", "σ[%d] = %d on a device that runs no deferred SF completion", i, x)
			}
		}
	}
	if len(d.Sigma) == p && len(d.SigmaR) == p && len(d.DeltaL) == p {
		for i := 0; i < p; i++ {
			if !topo.IsGPU(i) || i == d.RStarDev {
				continue
			}
			missing := rows - d.L[i]
			if got := d.Sigma[i] + d.SigmaR[i]; got > missing {
				vs.addf("dist.sigma-overrun", "device %d completes σ+σʳ = %d SF rows but misses at most %d", i, got, missing)
			}
		}
	}

	// Constraint (14): the σ part must fit the predicted τ2→τtot slack.
	// Only LP distributions carry predictions; one row of tolerance absorbs
	// the integer split.
	if pm != nil && d.PredTot > 0 && len(d.Sigma) == p {
		slack := d.PredTot - d.PredTau2
		for i, x := range d.Sigma {
			if x == 0 || !topo.IsGPU(i) {
				continue
			}
			per := pm.T(i, sched.SFh2d)
			if t := float64(x) * per; t > slack+per+eps {
				vs.addf("dist.sigma-slack", "device %d σ transfer of %d rows takes %.3g s but the τ2→τtot slack is %.3g s",
					i, x, t, slack)
			}
		}
	}
	return vs.err()
}

// Frame validates one executed inter-frame end to end: the static
// distribution invariants plus the τ1/τ2/τtot dependency ordering of the
// executed timeline. spans is the task list the simulator ran (kernels,
// transfers, barriers), tau1/tau2/tot the measured synchronization points.
func Frame(topo sched.Topology, w device.Workload, d sched.Distribution,
	pm *sched.PerfModel, spans []Span, tau1, tau2, tot float64) error {

	var vs violations
	if err := Distribution(topo, w, d, pm); err != nil {
		vs.list = append(vs.list, err.(*Error).Violations...)
	}
	checkTimeline(&vs, spans, tau1, tau2, tot)
	checkDeferredTransfers(&vs, topo, w, d, spans, tau1, tau2)
	return vs.err()
}

// checkDeferredTransfers asserts the σ-window and R*-prefetch structure
// of Fig. 5 on the executed timeline. The single copy engine serializes
// every SF upload into one of two disjoint windows — Δl/σʳ/MC-prefetch
// work completing by τ2, σ completions at or after τ2 — and the R*
// device must prefetch its MC inputs (CF/SF) inside the τ1→τ2 slack and
// its missing best-MV field after τ2 but before the R* kernel launches.
func checkDeferredTransfers(vs *violations, topo sched.Topology, w device.Workload,
	d sched.Distribution, spans []Span, tau1, tau2 float64) {

	if len(spans) == 0 || len(d.M) != topo.NumDevices() {
		return // distribution-only validation, or shape already flagged
	}
	p := topo.NumDevices()
	rows := w.Rows()
	rstar := d.RStarDev

	// Per-device evidence gathered in one pass over the spans.
	type devEv struct {
		sigmaSF    bool    // SF.h2d starting at/after τ2
		mcCF, mcSF bool    // CF/SF.h2d inside [τ1, τ2] (R* MC prefetch window)
		mvPrefetch bool    // MV.h2d starting at/after τ2
		mvPreEnd   float64 // latest end of such an MV.h2d
		rstarStart float64 // R* kernel start (NaN if absent)
	}
	ev := make([]devEv, p)
	for i := range ev {
		ev[i].rstarStart = -1
	}
	for _, s := range spans {
		kind, dev := kindOf(s.Label)
		if dev < 0 || dev >= p {
			continue
		}
		dur := s.End - s.Start
		switch kind {
		case "SF.h2d":
			if s.Start < tau2-eps && s.End > tau2+eps {
				vs.addf("time.sf-straddle-tau2",
					"SF.h2d on device %d spans τ2 (%.6g → %.6g, τ2 %.6g): SF uploads either complete by τ2 or are σ completions after it",
					dev, s.Start, s.End, tau2)
			}
			if s.Start >= tau2-eps && dur > eps {
				ev[dev].sigmaSF = true
				if len(d.Sigma) == p && d.Sigma[dev] == 0 {
					vs.addf("time.sigma-unexpected",
						"SF.h2d on device %d starts at %.6g in the τ2→τtot slack but σ[%d] = 0", dev, s.Start, dev)
				}
			}
			if s.Start >= tau1-eps && s.End <= tau2+eps {
				ev[dev].mcSF = true
			}
		case "CF.h2d":
			if s.Start >= tau1-eps && s.End <= tau2+eps {
				ev[dev].mcCF = true
			}
			if dev == rstar && s.Start >= tau1-eps && s.End > tau2+eps {
				vs.addf("time.rstar-mc-prefetch",
					"CF MC prefetch on R* device %d runs %.6g → %.6g past τ2 %.6g (MC would stall in the R* window)",
					dev, s.Start, s.End, tau2)
			}
		case "MV.h2d":
			if dev == rstar {
				if s.Start < tau2-eps && s.End > tau2+eps {
					vs.addf("time.rstar-mv-prefetch",
						"MV.h2d on R* device %d spans τ2 (%.6g → %.6g, τ2 %.6g)", dev, s.Start, s.End, tau2)
				}
				if s.Start >= tau2-eps && dur > eps {
					ev[dev].mvPrefetch = true
					if s.End > ev[dev].mvPreEnd {
						ev[dev].mvPreEnd = s.End
					}
				}
			}
		case "R*":
			if ev[dev].rstarStart < 0 || s.Start < ev[dev].rstarStart {
				ev[dev].rstarStart = s.Start
			}
		}
	}

	// σ completions promised by the distribution must appear on the wire.
	if len(d.Sigma) == p {
		for i, x := range d.Sigma {
			if x > 0 && !ev[i].sigmaSF {
				vs.addf("time.sigma-missing",
					"σ[%d] = %d SF rows deferred to the τ2→τtot slack but device %d runs no SF.h2d at/after τ2 %.6g",
					i, x, i, tau2)
			}
		}
	}

	// R* prefetch structure (GPU-centric placement only: CPU cores read
	// host memory directly and transfer nothing).
	if topo.IsGPU(rstar) && ev[rstar].rstarStart >= 0 {
		if len(d.DeltaM) == p && rows-d.M[rstar]-d.DeltaM[rstar] > 0 && !ev[rstar].mcCF {
			vs.addf("time.rstar-mc-prefetch",
				"R* device %d misses %d CF rows for MC but runs no CF.h2d inside [τ1 %.6g, τ2 %.6g]",
				rstar, rows-d.M[rstar]-d.DeltaM[rstar], tau1, tau2)
		}
		if len(d.DeltaL) == p && rows-d.L[rstar]-d.DeltaL[rstar] > 0 && !ev[rstar].mcSF {
			vs.addf("time.rstar-mc-prefetch",
				"R* device %d misses %d SF rows for MC but runs no SF.h2d inside [τ1 %.6g, τ2 %.6g]",
				rstar, rows-d.L[rstar]-d.DeltaL[rstar], tau1, tau2)
		}
		if rows-d.S[rstar] > 0 {
			switch {
			case !ev[rstar].mvPrefetch:
				vs.addf("time.rstar-mv-prefetch",
					"R* device %d misses %d best-MV rows but runs no MV.h2d at/after τ2 %.6g",
					rstar, rows-d.S[rstar], tau2)
			case ev[rstar].mvPreEnd > ev[rstar].rstarStart+eps:
				vs.addf("time.rstar-mv-prefetch",
					"R* kernel on device %d starts at %.6g before its MV prefetch lands at %.6g",
					rstar, ev[rstar].rstarStart, ev[rstar].mvPreEnd)
			}
		}
	}
}

// kindOf splits a task label ("SME@2", "CF.h2d@0", "tau1") into its kind
// and device index (-1 for host barriers).
func kindOf(label string) (kind string, dev int) {
	at := strings.LastIndexByte(label, '@')
	if at < 0 {
		return label, -1
	}
	n := 0
	for _, c := range label[at+1:] {
		if c < '0' || c > '9' {
			return label, -1
		}
		n = n*10 + int(c-'0')
	}
	return label[:at], n
}

// checkTimeline asserts the dependency ordering of Fig. 4 on the executed
// task spans.
func checkTimeline(vs *violations, spans []Span, tau1, tau2, tot float64) {
	if tau1 > tau2+eps || tau2 > tot+eps {
		vs.addf("time.order", "synchronization points out of order: τ1 %.6g, τ2 %.6g, τtot %.6g", tau1, tau2, tot)
	}
	byResource := map[string][]Span{}
	for _, s := range spans {
		if s.End < s.Start-eps {
			vs.addf("time.span", "task %s on %s ends before it starts (%.6g → %.6g)", s.Label, s.Resource, s.Start, s.End)
		}
		if s.End > tot+eps {
			vs.addf("time.makespan", "task %s on %s ends at %.6g after τtot %.6g", s.Label, s.Resource, s.End, tot)
		}
		byResource[s.Resource] = append(byResource[s.Resource], s)

		kind, dev := kindOf(s.Label)
		switch kind {
		case "ME", "INT":
			// Wave-1 kernels feed the τ1 assembly: their MVs/SF parts must
			// have landed before any SME consumes them.
			if s.End > tau1+eps {
				vs.addf("time."+strings.ToLower(kind)+"-past-tau1",
					"%s kernel on device %d ends at %.6g after τ1 %.6g", kind, dev, s.End, tau1)
			}
		case "SME":
			// No SME before its ME motion vectors landed at the τ1 assembly.
			if s.Start < tau1-eps {
				vs.addf("time.sme-before-tau1",
					"SME kernel on device %d starts at %.6g before τ1 %.6g (ME MVs not assembled yet)", dev, s.Start, tau1)
			}
			if s.End > tau2+eps {
				vs.addf("time.sme-past-tau2",
					"SME kernel on device %d ends at %.6g after τ2 %.6g", dev, s.End, tau2)
			}
		case "R*":
			// The R* group needs the complete best-MV field: nothing before τ2.
			if s.Start < tau2-eps {
				vs.addf("time.rstar-before-tau2",
					"R* work on device %d starts at %.6g before τ2 %.6g", dev, s.Start, tau2)
			}
		case "MV.d2h", "SF.d2h":
			// Wave-1 outputs: anything started inside the τ1 phase must have
			// landed on the host by τ1 (the assembly reads them).
			if s.Start < tau1-eps && s.End > tau1+eps {
				vs.addf("time.output-past-tau1",
					"%s on device %d spans τ1 (%.6g → %.6g, τ1 %.6g)", kind, dev, s.Start, s.End, tau1)
			}
		}
	}
	// Resource exclusivity: the simulated compute and copy engines are
	// serial; overlapping tasks mean the schedule double-booked a device.
	for res, list := range byResource {
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.Start < b.End-eps && b.Start < a.End-eps &&
					a.End-a.Start > eps && b.End-b.Start > eps {
					vs.addf("time.overlap", "tasks %s and %s overlap on %s ([%.6g,%.6g) vs [%.6g,%.6g))",
						a.Label, b.Label, res, a.Start, a.End, b.Start, b.End)
				}
			}
		}
	}
}
