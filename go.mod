module feves

go 1.22
