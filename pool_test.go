package feves

import (
	"bytes"
	"sync"
	"testing"
)

func poolYUV(w, h, frames int) []byte {
	fb := w * h * 3 / 2
	buf := make([]byte, frames*fb)
	for i := range buf {
		buf[i] = byte((i*13 + i/fb*41) % 253)
	}
	return buf
}

// TestPoolSingleSessionMatchesPlainSimulation checks that a lone tenant
// gets the whole platform and reproduces the plain Simulation timings
// exactly.
func TestPoolSingleSessionMatchesPlainSimulation(t *testing.T) {
	cfg := Config{Width: 1920, Height: 1088}
	const frames = 8

	sim, err := NewSimulation(cfg, SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(frames)
	if err != nil {
		t.Fatal(err)
	}

	p, err := NewPool(SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.NewSimulationSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Devices(); len(got) != 6 {
		t.Fatalf("lone session leased %v, want all 6 devices", got)
	}
	for i := 0; i < frames; i++ {
		got, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if got.Seconds != want[i].Seconds || got.Tau1 != want[i].Tau1 {
			t.Fatalf("frame %d: pool session τtot %v, plain simulation %v",
				i, got.Seconds, want[i].Seconds)
		}
	}
}

// TestPoolConcurrentEncodersBitExact runs several encoder sessions over
// one pool concurrently — with arrivals re-partitioning the leases under
// the running sessions — and requires every coded stream to be
// byte-identical to a solo encode of the same sequence.
func TestPoolConcurrentEncodersBitExact(t *testing.T) {
	const w, h, frames = 64, 64, 4
	cfg := Config{Width: w, Height: h}
	yuv := poolYUV(w, h, frames)
	fb := w * h * 3 / 2

	enc, err := NewEncoder(cfg, SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if _, err := enc.EncodeYUV(yuv[i*fb : (i+1)*fb]); err != nil {
			t.Fatal(err)
		}
	}
	want := enc.Bitstream()
	if n, err := Verify(want); err != nil || n != frames {
		t.Fatalf("solo reference stream broken: %d frames, %v", n, err)
	}

	p, err := NewPool(SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 4
	streams := make([][]byte, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			s, err := p.NewEncoderSession(cfg)
			if err != nil {
				errs[ti] = err
				return
			}
			defer s.Close()
			for i := 0; i < frames; i++ {
				if _, err := s.EncodeYUV(yuv[i*fb : (i+1)*fb]); err != nil {
					errs[ti] = err
					return
				}
			}
			streams[ti] = s.Bitstream()
		}(ti)
	}
	wg.Wait()
	for ti := 0; ti < tenants; ti++ {
		if errs[ti] != nil {
			t.Fatalf("tenant %d: %v", ti, errs[ti])
		}
		if !bytes.Equal(streams[ti], want) {
			t.Errorf("tenant %d: bitstream differs from solo encode (%d vs %d bytes)",
				ti, len(streams[ti]), len(want))
		}
	}
	if got := p.Sessions(); got != 0 {
		t.Fatalf("%d sessions still leased after close", got)
	}
}

// TestPoolFrameParallelSessionsBitExact churns several frame-parallel
// encoder sessions over one pool concurrently — arrivals re-partition the
// leases under running pairs — and requires every coded stream to match a
// solo frame-parallel encode byte for byte. Run under -race this also
// checks the two-slot pair loop against the pool's lease bookkeeping.
func TestPoolFrameParallelSessionsBitExact(t *testing.T) {
	const w, h, frames = 256, 144, 8
	cfg := Config{Width: w, Height: h, FrameParallel: true}
	yuv := poolYUV(w, h, frames)
	fb := w * h * 3 / 2
	frameAt := func(i int) []byte {
		if i >= frames {
			return nil
		}
		return yuv[i*fb : (i+1)*fb]
	}
	encodePairs := func(pair func(a, b []byte) ([]FrameReport, error)) error {
		for i := 0; i < frames; {
			reps, err := pair(frameAt(i), frameAt(i+1))
			if err != nil {
				return err
			}
			i += len(reps)
		}
		return nil
	}

	enc, err := NewEncoder(cfg, SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	if err := encodePairs(enc.EncodeYUVPair); err != nil {
		t.Fatal(err)
	}
	want := enc.Bitstream()
	if n, err := Verify(want); err != nil || n != frames {
		t.Fatalf("solo reference stream broken: %d frames, %v", n, err)
	}

	p, err := NewPool(SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 3
	streams := make([][]byte, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			s, err := p.NewEncoderSession(cfg)
			if err != nil {
				errs[ti] = err
				return
			}
			defer s.Close()
			if err := encodePairs(s.EncodeYUVPair); err != nil {
				errs[ti] = err
				return
			}
			streams[ti] = s.Bitstream()
		}(ti)
	}
	wg.Wait()
	for ti := 0; ti < tenants; ti++ {
		if errs[ti] != nil {
			t.Fatalf("tenant %d: %v", ti, errs[ti])
		}
		if !bytes.Equal(streams[ti], want) {
			t.Errorf("tenant %d: frame-parallel stream differs from solo encode (%d vs %d bytes)",
				ti, len(streams[ti]), len(want))
		}
	}
	if got := p.Sessions(); got != 0 {
		t.Fatalf("%d sessions still leased after close", got)
	}
}

// TestPoolSessionsSeeDisjointLeases verifies that concurrently live
// sessions never share a device name beyond the physical multiplicity
// (each CPU core appears once; the two GPUs are distinct profiles).
func TestPoolSessionsSeeDisjointLeases(t *testing.T) {
	p, err := NewPool(SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Width: 1920, Height: 1088}
	var sessions []*Session
	for i := 0; i < 3; i++ {
		s, err := p.NewSimulationSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	total := 0
	gpus := map[string]int{}
	for _, s := range sessions {
		ds := s.Devices()
		if len(ds) == 0 {
			t.Fatal("session with an empty lease")
		}
		total += len(ds)
		for _, d := range ds {
			if d == "GPU_F" || d == "GPU_K" {
				gpus[d]++
			}
		}
	}
	if total != 6 {
		t.Fatalf("leases cover %d device slots, want all 6", total)
	}
	for name, n := range gpus {
		if n > 1 {
			t.Fatalf("%s leased to %d sessions at once", name, n)
		}
	}
	// Every session must still step on its (possibly shrunken) lease.
	for i, s := range sessions {
		if _, err := s.Step(); err != nil {
			t.Fatalf("session %d step: %v", i, err)
		}
		s.Close()
	}
}

// TestPoolSessionAbsorbsRepartitions drives a session across another
// tenant's arrival and departure and checks it keeps stepping, absorbing
// at least one lease change.
func TestPoolSessionAbsorbsRepartitions(t *testing.T) {
	p, err := NewPool(SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Width: 1920, Height: 1088}
	s, err := p.NewSimulationSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	other, err := p.NewSimulationSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Repartitions() == 0 {
		t.Fatal("session did not pick up the arrival's re-partition")
	}
	if len(s.Devices()) >= 6 {
		t.Fatalf("session kept %v despite a second tenant", s.Devices())
	}
	other.Close()
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Devices()); got != 6 {
		t.Fatalf("lease has %d devices after the other tenant left, want 6", got)
	}
}

func TestPoolModeMisuse(t *testing.T) {
	p, err := NewPool(SysNFK())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Width: 64, Height: 64}
	sim, err := p.NewSimulationSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.EncodeYUV(make([]byte, 64*64*3/2)); err == nil {
		t.Fatal("EncodeYUV accepted on a simulation session")
	}
	sim.Close()
	sim.Close() // idempotent
	if _, err := sim.Step(); err == nil {
		t.Fatal("Step accepted on a closed session")
	}
}
