// Command feves-trace inspects the per-frame schedule the Video Coding
// Manager produces: an ASCII Gantt chart of every device stream (kernels
// and transfers), the τ1/τ2/τtot synchronization points, per-resource
// utilization, and optionally the raw spans as CSV — Fig. 4 of the paper,
// live.
//
// Example:
//
//	feves-trace -platform syshk -sa 64 -rf 2 -frame 5
//	feves-trace -platform sysnff -frame 3 -csv
//	feves-trace -frame 8 -json                         # FrameTiming for scripting
//	feves-trace -frame 20 -perfetto run.trace.json     # whole-run timeline
//
// With -flight it switches from running a simulation to reading a flight
// recorder document — a post-mortem bundle or the /debug/flight JSON of a
// live feves-serve — and renders the recorded window instead: the incident
// log, the captured frames, and the same Gantt/CSV/SVG/Perfetto views of
// any recorded schedule:
//
//	curl localhost:8080/debug/flight > flight.json
//	feves-trace -flight flight.json                    # newest bundle, blamed frame
//	feves-trace -flight flight.json -bundle 2 -frame 7
//	feves-trace -flight flight.json -svg dead-gpu.svg
//	feves-trace -flight flight.json -perfetto window.trace.json
//
// With -events (repeatable) it merges JSONL telemetry event streams — one
// file per fleet node — onto a shared timeline keyed by node label, so a
// whole feves-fleet run renders as one Perfetto trace with a lane group
// per node/session:
//
//	feves-trace -events node0.jsonl -events node1.jsonl -perfetto fleet.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"feves/internal/core"
	"feves/internal/h264/codec"
	"feves/internal/platforms"
	"feves/internal/teleflag"
	"feves/internal/trace"
	"feves/internal/vcm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("feves-trace: ")
	var (
		platform = flag.String("platform", "syshk", "platform: syshk sysnf sysnff cpun cpuh gpuf gpuk")
		sa       = flag.Int("sa", 32, "search-area size")
		rf       = flag.Int("rf", 1, "reference frames")
		frame    = flag.Int("frame", 4, "inter-frame index to display (≥1)")
		width    = flag.Int("width", 100, "gantt width in characters")
		csv      = flag.Bool("csv", false, "emit raw spans as CSV instead of a gantt")
		jsonOut  = flag.Bool("json", false, "emit the frame's full timing (spans, τ points, R* device) as JSON")
		svg      = flag.String("svg", "", "also write the schedule as an SVG gantt to this file")
		flight   = flag.String("flight", "",
			"read a flight-recorder document (a /debug/flight snapshot or a single bundle) instead of running a simulation")
		bundleID = flag.Int("bundle", -1,
			"with -flight: post-mortem bundle id to inspect (-1 = the newest bundle, or the live ring when none was captured)")
	)
	tf := teleflag.Register()
	flag.Parse()

	if paths := tf.EventsPaths(); len(paths) > 0 {
		if *flight != "" {
			log.Fatal("-events (merge mode) and -flight are mutually exclusive")
		}
		runMerge(mergeOpts{paths: paths, perfetto: tf.PerfettoPath(), traceCap: tf.TraceEventCap()})
		return
	}

	if *flight != "" {
		frameSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "frame" {
				frameSet = true
			}
		})
		runFlight(flightOpts{
			path: *flight, bundle: *bundleID,
			frame: *frame, frameSet: frameSet,
			width: *width, csv: *csv, jsonOut: *jsonOut, svg: *svg,
			perfetto: tf.PerfettoPath(), traceCap: tf.TraceEventCap(),
		})
		return
	}

	pl, err := platforms.Lookup(*platform)
	if err != nil {
		log.Fatal(err)
	}
	obs, closeTelemetry, err := tf.Observer()
	if err != nil {
		log.Fatal(err)
	}
	fw, err := core.New(core.Options{
		Platform: pl,
		Codec: codec.Config{Width: 1920, Height: 1088, SearchRange: *sa / 2,
			NumRF: *rf, IQP: 27, PQP: 28},
		Mode:      vcm.TimingOnly,
		Telemetry: obs.Sink(),
	})
	if err != nil {
		log.Fatal(err)
	}
	var last core.Result
	for i := 0; i <= *frame; i++ {
		last, err = fw.EncodeNext(nil)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := closeTelemetry(); err != nil {
		log.Fatal(err)
	}
	if *svg != "" {
		if err := os.WriteFile(*svg, []byte(trace.SVG(last.Timing, 1200)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svg)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(last.Timing); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *csv {
		fmt.Print(trace.CSV(last.Timing))
		return
	}
	fmt.Print(trace.Gantt(last.Timing, *width))
	fmt.Printf("\ndistribution: ME=%v INT=%v SME=%v Δm=%v Δl=%v σ=%v σʳ=%v\n",
		last.Distribution.M, last.Distribution.L, last.Distribution.S,
		last.Distribution.DeltaM, last.Distribution.DeltaL,
		last.Distribution.Sigma, last.Distribution.SigmaR)
	fmt.Printf("scheduling overhead: %v\n\nutilization:\n", last.SchedOverhead)
	busy := trace.Busy(last.Timing)
	names := make([]string, 0, len(busy))
	for n := range busy {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-24s %5.1f%%\n", n, busy[n]*100)
	}
}
