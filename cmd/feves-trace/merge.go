package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"feves/internal/telemetry"
)

// mergeOpts carries the parsed flags of merge mode: one -events JSONL file
// per fleet node, fused into a single Perfetto timeline.
type mergeOpts struct {
	paths    []string
	perfetto string
	traceCap int
}

// mergedEvent is the subset of the telemetry event schema the merger
// consumes. Only frame_end records carry timing; everything else in the
// stream (audits, marks, health transitions) is counted and skipped.
type mergedEvent struct {
	Type    string  `json:"type"`
	Node    string  `json:"node"`
	Session string  `json:"session"`
	Frame   int     `json:"frame"`
	Attempt int     `json:"attempt"`
	Tau1    float64 `json:"tau1"`
	Tau2    float64 `json:"tau2"`
	Tot     float64 `json:"tau_tot"`
}

// laneStats aggregates one node's merged contribution.
type laneStats struct {
	Frames   int
	Sessions map[string]bool
	Busy     float64 // summed τtot seconds
	Skipped  int     // non-frame_end records
}

// runMerge fuses several per-node event streams — the -events files a
// fleet run's nodes wrote — onto one shared timeline keyed by node label
// and writes it as a single Perfetto trace. Within each node/session lane
// frames abut back-to-back, so stragglers, re-leased shards (attempt tags)
// and per-node throughput line up on a common time axis.
func runMerge(o mergeOpts) {
	w := telemetry.NewTraceWriterCap(o.traceCap)
	stats := map[string]*laneStats{}
	for _, path := range o.paths {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := mergeEventStream(w, f, nodeLabelFor(path), stats); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		f.Close()
	}
	if len(stats) == 0 {
		log.Fatalf("no frame_end records in %d event file(s): nothing to merge", len(o.paths))
	}

	out := o.perfetto
	if out == "" {
		out = "fleet.trace.json"
	}
	of, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Export(of); err != nil {
		of.Close()
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}

	nodes := make([]string, 0, len(stats))
	for n := range stats {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	fmt.Printf("merged %d event file(s) across %d node(s):\n", len(o.paths), len(nodes))
	for _, n := range nodes {
		s := stats[n]
		fmt.Printf("  %-12s %4d frames  %2d session(s)  %8.4fs encode time\n",
			n, s.Frames, len(s.Sessions), s.Busy)
	}
	fmt.Printf("wrote %s (%d frames on the shared timeline)\n", out, w.Frames())
}

// mergeEventStream replays one node's JSONL event stream into the shared
// trace writer. Lanes are keyed by the event's node label — fallback is
// the label derived from the file name, for streams written before the
// fleet stamped nodes — with one Perfetto process per node/session pair
// and frames laid back-to-back per lane.
func mergeEventStream(w *telemetry.TraceWriter, r io.Reader, fallback string, stats map[string]*laneStats) error {
	dec := json.NewDecoder(r)
	offsets := map[string]float64{}
	line := 0
	for {
		var ev mergedEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("record %d: %w", line+1, err)
		}
		line++
		node := ev.Node
		if node == "" {
			node = fallback
		}
		st := stats[node]
		if st == nil {
			st = &laneStats{Sessions: map[string]bool{}}
			stats[node] = st
		}
		if ev.Type != "frame_end" {
			st.Skipped++
			continue
		}
		lane := node
		if ev.Session != "" {
			lane = node + "/" + ev.Session
		}
		off := offsets[lane]
		w.AddFrame(w.SessionPID(lane), ev.Frame, ev.Attempt, off, ev.Tau1, ev.Tau2, ev.Tot, nil)
		offsets[lane] = off + ev.Tot
		st.Frames++
		st.Sessions[ev.Session] = true
		st.Busy += ev.Tot
	}
}

// nodeLabelFor derives a lane label from an event file's name
// (node0.jsonl → node0) for streams whose records carry no node field.
func nodeLabelFor(path string) string {
	base := filepath.Base(path)
	if i := strings.Index(base, "."); i > 0 {
		base = base[:i]
	}
	return base
}
