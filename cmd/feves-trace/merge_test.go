package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"feves/internal/telemetry"
)

func jsonl(t *testing.T, events ...interface{}) string {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestMergeEventStreamsKeyedByNode merges two per-node event files and
// checks the shared timeline: lanes keyed by node/session, frames abutting
// per lane, non-frame records skipped, and attempt tags surviving.
func TestMergeEventStreamsKeyedByNode(t *testing.T) {
	node0 := jsonl(t,
		telemetry.FrameStartEvent{Type: "frame_start", Node: "node0", Session: "job-1", Frame: 0},
		telemetry.FrameEndEvent{Type: "frame_end", Node: "node0", Session: "job-1", Frame: 0,
			Tau1: 0.01, Tau2: 0.02, Tot: 0.05},
		telemetry.FrameEndEvent{Type: "frame_end", Node: "node0", Session: "job-1", Frame: 1,
			Tau1: 0.01, Tau2: 0.02, Tot: 0.04},
	)
	node1 := jsonl(t,
		telemetry.FrameEndEvent{Type: "frame_end", Node: "node1", Session: "clip/shard1", Frame: 4,
			Attempt: 2, Tau1: 0.02, Tau2: 0.03, Tot: 0.06},
	)

	w := telemetry.NewTraceWriterCap(0)
	stats := map[string]*laneStats{}
	for name, stream := range map[string]string{"node0": node0, "node1": node1} {
		if err := mergeEventStream(w, strings.NewReader(stream), name, stats); err != nil {
			t.Fatal(err)
		}
	}

	if len(stats) != 2 || stats["node0"].Frames != 2 || stats["node1"].Frames != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats["node0"].Skipped != 1 {
		t.Fatalf("node0 skipped %d non-frame records, want 1", stats["node0"].Skipped)
	}
	if w.Frames() != 3 {
		t.Fatalf("merged timeline holds %d frames, want 3", w.Frames())
	}
	lanes := w.Sessions()
	want := []string{"node0/job-1", "node1/clip/shard1"}
	if len(lanes) != len(want) || lanes[0] != want[0] || lanes[1] != want[1] {
		t.Fatalf("lanes %v, want %v", lanes, want)
	}

	var buf bytes.Buffer
	if err := w.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string                 `json:"name"`
			Phase string                 `json:"ph"`
			TS    float64                `json:"ts"`
			PID   int                    `json:"pid"`
			Args  map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// node0's second frame starts where the first ended: 0.05 s = 50000 µs.
	var starts []float64
	attemptTagged := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "frame" && ev.Phase == "X" {
			starts = append(starts, ev.TS)
			if a, ok := ev.Args["attempt"]; ok && a == 2.0 {
				attemptTagged = true
			}
		}
	}
	if len(starts) != 3 {
		t.Fatalf("exported %d frame bars, want 3", len(starts))
	}
	found := false
	for _, ts := range starts {
		if ts == 50000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no frame bar at the 50000 µs back-to-back offset: %v", starts)
	}
	if !attemptTagged {
		t.Fatal("re-leased shard's attempt tag lost in the merge")
	}
}

// TestMergeEventStreamFallsBackToFileLabel covers pre-fleet streams whose
// records carry no node field: the lane key comes from the file name.
func TestMergeEventStreamFallsBackToFileLabel(t *testing.T) {
	stream := jsonl(t,
		telemetry.FrameEndEvent{Type: "frame_end", Session: "s", Frame: 0, Tot: 0.01},
	)
	w := telemetry.NewTraceWriterCap(0)
	stats := map[string]*laneStats{}
	if err := mergeEventStream(w, strings.NewReader(stream), nodeLabelFor("/tmp/node7.events.jsonl"), stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["node7"]; !ok {
		t.Fatalf("stats keyed %v, want file-derived label node7", stats)
	}
	lanes := w.Sessions()
	if len(lanes) != 1 || lanes[0] != "node7/s" {
		t.Fatalf("lanes %v, want [node7/s]", lanes)
	}
}

// TestMergeEventStreamRejectsMalformedJSON pins the error path: a corrupt
// record fails with its position instead of silently truncating the trace.
func TestMergeEventStreamRejectsMalformedJSON(t *testing.T) {
	good := jsonl(t, telemetry.FrameEndEvent{Type: "frame_end", Node: "n", Frame: 0, Tot: 0.01})
	err := mergeEventStream(telemetry.NewTraceWriterCap(0), strings.NewReader(good+"{broken\n"), "n", map[string]*laneStats{})
	if err == nil || !strings.Contains(err.Error(), "record 2") {
		t.Fatalf("malformed record error %v, want position-tagged failure", err)
	}
}
