package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"

	"feves/internal/telemetry"
	"feves/internal/trace"
	"feves/internal/vcm"
)

// flightOpts carries the parsed flags of -flight mode.
type flightOpts struct {
	path     string
	bundle   int
	frame    int
	frameSet bool
	width    int
	csv      bool
	jsonOut  bool
	svg      string
	perfetto string
	traceCap int
}

// flightFile decodes both document shapes the recorder produces: a full
// /debug/flight snapshot (frames + incidents + bundles) and a single
// post-mortem Bundle (reason + frames + incidents).
type flightFile struct {
	Reason    string                  `json:"reason"`
	Session   string                  `json:"session"`
	Frame     int                     `json:"frame"`
	Detail    string                  `json:"detail"`
	Frames    []telemetry.FlightEntry `json:"frames"`
	Incidents []telemetry.Incident    `json:"incidents"`
	Bundles   []telemetry.Bundle      `json:"bundles"`
}

// runFlight renders a flight-recorder document: picks the window (a bundle
// or the live ring), prints the post-mortem header and incident log, and
// reuses the simulation path's Gantt/CSV/SVG/JSON views on the recorded
// schedule of the selected frame. With -perfetto it additionally replays
// the whole window into a trace timeline, one lane per session.
func runFlight(o flightOpts) {
	raw, err := os.ReadFile(o.path)
	if err != nil {
		log.Fatal(err)
	}
	var ff flightFile
	if err := json.Unmarshal(raw, &ff); err != nil {
		log.Fatalf("%s: %v", o.path, err)
	}

	window := telemetry.Bundle{
		Reason: ff.Reason, Session: ff.Session, Frame: ff.Frame,
		Detail: ff.Detail, Frames: ff.Frames, Incidents: ff.Incidents,
	}
	switch {
	case o.bundle >= 0:
		found := false
		for _, b := range ff.Bundles {
			if b.ID == o.bundle {
				window, found = b, true
				break
			}
		}
		if !found {
			log.Fatalf("%s: no bundle with id %d (have %s)", o.path, o.bundle, bundleIDs(ff.Bundles))
		}
	case ff.Reason == "" && len(ff.Bundles) > 0:
		window = ff.Bundles[len(ff.Bundles)-1]
	}
	if len(window.Frames) == 0 {
		log.Fatalf("%s: selected window holds no recorded frames", o.path)
	}

	if window.Reason != "" {
		fmt.Printf("post-mortem bundle %d: %s\n", window.ID, window.Reason)
		if window.Session != "" {
			fmt.Printf("  session:  %s\n", window.Session)
		}
		fmt.Printf("  frame:    %d\n", window.Frame)
		if window.Detail != "" {
			fmt.Printf("  detail:   %s\n", window.Detail)
		}
		if !window.Captured.IsZero() {
			fmt.Printf("  captured: %s\n", window.Captured.Format("2006-01-02 15:04:05 MST"))
		}
	} else {
		fmt.Printf("live flight ring: %d frames, %d incidents, %d bundles\n",
			len(window.Frames), len(window.Incidents), len(ff.Bundles))
	}
	if len(window.Incidents) > 0 {
		fmt.Printf("\nincidents (oldest first):\n")
		for _, in := range window.Incidents {
			s := in.Session
			if s == "" {
				s = "-"
			}
			fmt.Printf("  #%-4d %-18s session=%-12s frame=%-4d dev=%-3d %s\n",
				in.Seq, in.Kind, s, in.Frame, in.Device, in.Detail)
		}
	}

	entry := pickEntry(window, o)
	fmt.Printf("\nframe %d", entry.Frame)
	if entry.Session != "" {
		fmt.Printf(" (session %s)", entry.Session)
	}
	if entry.Attempt > 0 {
		fmt.Printf(" attempt %d", entry.Attempt)
	}
	if entry.PredTot > 0 {
		fmt.Printf(": τtot %.4fs measured vs %.4fs predicted", entry.Tot, entry.PredTot)
	} else {
		fmt.Printf(": τtot %.4fs", entry.Tot)
	}
	fmt.Println()

	timing := entryTiming(entry)
	if o.svg != "" {
		if err := os.WriteFile(o.svg, []byte(trace.SVG(timing, 1200)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", o.svg)
	}
	if o.perfetto != "" {
		if err := writeWindowPerfetto(o.perfetto, o.traceCap, window.Frames); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d frames)\n", o.perfetto, len(window.Frames))
	}
	switch {
	case o.jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entry); err != nil {
			log.Fatal(err)
		}
	case o.csv:
		fmt.Print(trace.CSV(timing))
	case len(timing.Spans) > 0:
		fmt.Println()
		fmt.Print(trace.Gantt(timing, o.width))
		fmt.Printf("\ndistribution: ME=%v INT=%v SME=%v Δm=%v Δl=%v σ=%v σʳ=%v\n",
			entry.M, entry.L, entry.S, entry.DeltaM, entry.DeltaL,
			entry.Sigma, entry.SigmaR)
	default:
		fmt.Println("no spans recorded for this frame (intra or re-characterization frame)")
	}
}

// pickEntry selects the frame to render: an explicit -frame, else the
// bundle's blamed frame when it is still in the window, else the newest
// recorded frame.
func pickEntry(window telemetry.Bundle, o flightOpts) telemetry.FlightEntry {
	want, required := window.Frame, false
	if o.frameSet {
		want, required = o.frame, true
	}
	for i := len(window.Frames) - 1; i >= 0; i-- {
		if window.Frames[i].Frame == want {
			return window.Frames[i]
		}
	}
	if required {
		log.Fatalf("frame %d is not in the recorded window (frames %d..%d)",
			want, window.Frames[0].Frame, window.Frames[len(window.Frames)-1].Frame)
	}
	return window.Frames[len(window.Frames)-1]
}

// entryTiming rebuilds the vcm.FrameTiming view of a recorded frame so the
// existing Gantt/CSV/SVG renderers apply unchanged.
func entryTiming(e telemetry.FlightEntry) vcm.FrameTiming {
	t := vcm.FrameTiming{
		Frame: e.Frame, Tau1: e.Tau1, Tau2: e.Tau2, Tot: e.Tot,
		RStarDev: e.RStarDev,
		Spans:    make([]vcm.TaskSpan, len(e.Spans)),
	}
	for i, s := range e.Spans {
		t.Spans[i] = vcm.TaskSpan{
			Resource: s.Resource, Label: s.Label, Start: s.Start, End: s.End,
		}
	}
	return t
}

// writeWindowPerfetto replays every recorded frame into a fresh trace
// writer — one process lane per session, frames laid back-to-back per lane
// — and writes the Perfetto-loadable timeline.
func writeWindowPerfetto(path string, capEvents int, frames []telemetry.FlightEntry) error {
	w := telemetry.NewTraceWriterCap(capEvents)
	offsets := map[string]float64{}
	for _, e := range frames {
		pid := 0
		if e.Session != "" {
			pid = w.SessionPID(e.Session)
		}
		off := offsets[e.Session]
		w.AddFrame(pid, e.Frame, e.Attempt, off, e.Tau1, e.Tau2, e.Tot, e.Spans)
		adv := e.Tot
		for _, s := range e.Spans {
			if s.End > adv {
				adv = s.End
			}
		}
		offsets[e.Session] = off + adv
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = w.Export(f)
	if e := f.Close(); err == nil {
		err = e
	}
	return err
}

// bundleIDs lists the available bundle ids for the -bundle error message.
func bundleIDs(bs []telemetry.Bundle) string {
	if len(bs) == 0 {
		return "none"
	}
	ids := make([]int, len(bs))
	for i, b := range bs {
		ids[i] = b.ID
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}
