// Command feves-fleet runs the FEVES sharded encode fleet: an HTTP
// coordinator federating several simulated nodes — each a full device
// platform with its own pool and serve layer — behind a third-level
// routing LP. Streams submitted to /streams are sharded across nodes at
// GOP boundaries and reassembled bit-exactly; nodes that miss heartbeats
// are declared dead and their shards replay on survivors from the last
// IDR (README §Fleet).
//
//	feves-fleet -nodes sysnfk,sysnfk,sysnt -addr :8090 &
//	curl -d '{"mode":"simulate","width":1920,"height":1088,"frames":300}' localhost:8090/jobs
//	curl -d @stream.json localhost:8090/streams        # GOP-sharded stream
//	curl localhost:8090/streams/stream-1
//	curl localhost:8090/streams/stream-1/bitstream     # reassembled encode
//	curl localhost:8090/debug/state                    # nodes, streams, router LP
//	curl localhost:8090/metrics
//
// The virtual cluster clock ticks every -heartbeat; "die:node1@40" in
// -deaths makes node1 vanish at tick 40, with the coordinator noticing
// -miss-limit ticks later. SIGINT/SIGTERM drains gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"feves/internal/fleet"
	"feves/internal/platforms"
	"feves/internal/teleflag"
	"feves/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("feves-fleet: ")
	var (
		addr  = flag.String("addr", ":8090", "HTTP listen address")
		nodes = flag.String("nodes", "sysnfk,sysnfk",
			"comma-separated node platforms (labels assigned node0, node1, ...): "+strings.Join(platforms.Names(), " "))
		queueDepth = flag.Int("queue-depth", 16, "per-node admission backlog bound")
		heartbeat  = flag.Duration("heartbeat", 250*time.Millisecond,
			"real-time interval between virtual cluster-clock ticks")
		missLimit = flag.Int("miss-limit", 3,
			"consecutive missed heartbeats before a node is declared dead")
		deaths = flag.String("deaths", "",
			"deterministic node-death schedule: die:LABEL@TICK entries, ';'-separated")
		affinity = flag.Float64("affinity", 0.25,
			"shard affinity: LP share a stream gives up to stay on a node it already uses (0 = off, 1 = collapse onto one node)")
		specSlack = flag.Float64("spec-slack", 0.5,
			"speculative re-lease: completion-fraction lag behind a stream's front-runner that re-leases a straggling shard to a second node (0 = off)")
		check = flag.Bool("check", false,
			"validate every frame's schedule in observe mode on every node")
		slack = flag.Float64("deadline-slack", 0,
			"arm per-session failover on every node: deadlines at LP prediction x slack (0 = off)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long a SIGTERM drain waits for in-flight work before cancelling it")
	)
	tf := teleflag.Register()
	flag.Parse()

	obs, closeTelemetry, err := tf.Observer()
	if err != nil {
		log.Fatal(err)
	}
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Trace:   telemetry.NewTraceWriterCap(tf.TraceEventCap()),
		Flight:  telemetry.NewFlightRecorder(tf.FlightFrames()),
	}
	if obs != nil {
		tel = obs.Sink()
		if tel.Trace == nil {
			tel.Trace = telemetry.NewTraceWriterCap(tf.TraceEventCap())
		}
	}

	var nodeCfgs []fleet.NodeConfig
	for i, name := range strings.Split(*nodes, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		pl, err := platforms.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		pl.Seed = uint64(1000 + i) // distinct deterministic jitter per node
		nodeCfgs = append(nodeCfgs, fleet.NodeConfig{
			Label:      fmt.Sprintf("node%d", i),
			Platform:   pl,
			QueueDepth: *queueDepth,
		})
	}
	f, err := fleet.New(fleet.Config{
		Nodes:          nodeCfgs,
		Telemetry:      tel,
		CheckSchedules: *check,
		DeadlineSlack:  *slack,
		MissLimit:      *missLimit,
		Affinity:       *affinity,
		SpecSlack:      *specSlack,
		Deaths:         *deaths,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The virtual cluster clock: each real-time heartbeat interval advances
	// one tick, firing scheduled deaths and the missed-beat detector.
	stopClock := make(chan struct{})
	clockDone := make(chan struct{})
	go func() {
		defer close(clockDone)
		ticker := time.NewTicker(*heartbeat)
		defer ticker.Stop()
		for {
			select {
			case <-stopClock:
				return
			case <-ticker.C:
				for _, label := range f.Tick() {
					log.Printf("tick %d: node %s declared dead (missed %d heartbeats); re-leasing its shards",
						f.Clock(), label, *missLimit)
				}
			}
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: f.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("draining (up to %v): rejecting new work, finishing in-flight streams", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := f.Drain(ctx); err != nil {
			log.Printf("drain timed out, cancelled remaining work: %v", err)
		}
		close(stopClock)
		<-clockDone
		f.Close()
		shctx, shcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shcancel()
		httpSrv.Shutdown(shctx)
	}()

	labels := make([]string, len(nodeCfgs))
	for i, nc := range nodeCfgs {
		labels[i] = fmt.Sprintf("%s(%s:%d devices)", nc.Label, nc.Platform.Name, nc.Platform.NumDevices())
	}
	log.Printf("federating %d nodes: %s", len(nodeCfgs), strings.Join(labels, " "))
	log.Printf("heartbeat %v, miss limit %d; serving on %s", *heartbeat, *missLimit, *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	if err := closeTelemetry(); err != nil {
		log.Fatal(err)
	}
}
