// Command feves-serve runs the FEVES multi-tenant encode service: an HTTP
// API in front of a shared device pool that leases disjoint device subsets
// to concurrent encode/simulate sessions, re-partitioning the platform as
// tenants arrive and depart (README §Serving).
//
// Submit a job, poll it, and follow its per-frame results live:
//
//	feves-serve -platform sysnfk -addr :8080 &
//	curl -d '{"mode":"simulate","width":1920,"height":1088,"frames":300}' localhost:8080/jobs
//	curl localhost:8080/jobs/job-1
//	curl -N localhost:8080/jobs/job-1/results        # JSONL stream
//	curl localhost:8080/metrics                      # Prometheus text
//	curl localhost:8080/debug/state                  # pool/lease/health topology
//	curl localhost:8080/debug/flight                 # flight recorder + bundles
//	curl localhost:8080/debug/trace                  # live Perfetto snapshot
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected with 503
// while in-flight sessions finish (bounded by -drain-timeout, after which
// they are cancelled at the next frame boundary). SIGQUIT snapshots the
// live trace ring to -trace-snapshot without stopping the service.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"feves/internal/platforms"
	"feves/internal/serve"
	"feves/internal/teleflag"
	"feves/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("feves-serve: ")
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		platform = flag.String("platform", "sysnfk",
			"shared platform to pool: "+strings.Join(platforms.Names(), " "))
		maxSessions = flag.Int("max-sessions", 0,
			"concurrent session cap (0 = one per pooled device)")
		queueDepth = flag.Int("queue-depth", 16,
			"admitted-but-not-running backlog bound; beyond it submissions get 503")
		check = flag.Bool("check", false,
			"validate every frame's schedule in observe mode (violations are counted in feves_check_violations_total, not fatal)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second,
			"how long a SIGTERM drain waits for in-flight sessions before cancelling them")
		faults = flag.String("inject-faults", "",
			"deterministic fault spec for the pooled platform (die:DEV@F stall:DEV@F[+K] slow:DEV@FxR[+K] chaos:SEEDxRATE, ';'-separated)")
		slack = flag.Float64("deadline-slack", 0,
			"arm autonomous failover in every session: deadlines at LP prediction x slack; excluded devices leave the pool (0 = off)")
		traceSnapshot = flag.String("trace-snapshot", "feves-serve.trace.json",
			"file the SIGQUIT handler writes the live Perfetto trace ring to, without stopping the service ('' = disabled)")
	)
	tf := teleflag.Register()
	flag.Parse()

	pl, err := platforms.Lookup(*platform)
	if err != nil {
		log.Fatal(err)
	}
	obs, closeTelemetry, err := tf.Observer()
	if err != nil {
		log.Fatal(err)
	}
	// The service always carries a metrics registry, a bounded trace ring
	// and a flight recorder so /metrics, /debug/trace and /debug/flight
	// work out of the box; the teleflag observer adds the event/trace file
	// outputs (and a second scrape endpoint) when requested.
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Trace:   telemetry.NewTraceWriterCap(tf.TraceEventCap()),
		Flight:  telemetry.NewFlightRecorder(tf.FlightFrames()),
	}
	if obs != nil {
		tel = obs.Sink()
		if tel.Trace == nil {
			// Keep /debug/trace live even when no -perfetto file was asked
			// for; the ring is bounded either way.
			tel.Trace = telemetry.NewTraceWriterCap(tf.TraceEventCap())
		}
	}

	s, err := serve.New(serve.Config{
		Platform:       pl,
		MaxSessions:    *maxSessions,
		QueueDepth:     *queueDepth,
		CheckSchedules: *check,
		Telemetry:      tel,
		DeadlineSlack:  *slack,
		FaultSpec:      *faults,
	})
	if err != nil {
		log.Fatal(err)
	}

	// SIGQUIT snapshots the live trace ring to a Perfetto-loadable file
	// without disturbing the service — the file-free counterpart of
	// GET /debug/trace for operators at the terminal.
	if *traceSnapshot != "" && tel.Trace != nil {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			for range quit {
				f, err := os.Create(*traceSnapshot)
				if err != nil {
					log.Printf("SIGQUIT: trace snapshot: %v", err)
					continue
				}
				err = tel.Trace.Export(f)
				if e := f.Close(); err == nil {
					err = e
				}
				if err != nil {
					log.Printf("SIGQUIT: trace snapshot: %v", err)
					continue
				}
				log.Printf("SIGQUIT: wrote trace snapshot to %s (%d frames in ring, %d events dropped)",
					*traceSnapshot, tel.Trace.Frames(), tel.Trace.Dropped())
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("draining (up to %v): rejecting new jobs, finishing in-flight sessions", *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			log.Printf("drain timed out, cancelled remaining sessions: %v", err)
		}
		s.Close()
		shctx, shcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shcancel()
		httpSrv.Shutdown(shctx)
	}()

	sessions := *maxSessions
	if sessions <= 0 || sessions > pl.NumDevices() {
		sessions = pl.NumDevices()
	}
	log.Printf("pooling %s (%d devices), max %d sessions, queue depth %d",
		pl.Name, pl.NumDevices(), sessions, s.QueueDepth())
	log.Printf("serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	if err := closeTelemetry(); err != nil {
		log.Fatal(err)
	}
}
