// Command feves-bench regenerates every table and figure of the paper's
// evaluation section (plus this reproduction's ablations) on the simulated
// platforms and prints the series/rows as aligned text or JSON.
//
// Usage:
//
//	feves-bench -exp all
//	feves-bench -exp fig6a
//	feves-bench -exp fig7b -format json
//
// Experiments: fig6a fig6b fig7a fig7b speedups overhead share ablation
// engines accuracy workload scaling failover perf fleet fleetdeath
// fleetshed all.
//
// Performance regression gate: -exp perf measures the V4 control-path
// metrics (steady fps, allocs/frame, LP warm rate, fleet routing); -compare
// diffs them against a committed baseline and exits non-zero on regression:
//
//	feves-bench -exp perf -json -json-file BENCH_10.json         # refresh baseline
//	feves-bench -exp perf -compare BENCH_10.json -tol 0.15       # CI gate
//
// Fault injection: -inject-faults applies a deterministic fault schedule
// to every platform and -deadline-slack arms the autonomous failover
// machinery, e.g.
//
//	feves-bench -exp failover -check
//	feves-bench -exp fig7a -inject-faults "slow:GPU_K@40x8+3" -deadline-slack 3
//
// Observability: -metrics-addr serves a live Prometheus scrape aggregated
// over every framework the harness constructs, -events writes the JSONL
// event stream, -perfetto the combined schedule timeline:
//
//	feves-bench -exp accuracy -events bench.jsonl -perfetto bench.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"feves/internal/bench"
	"feves/internal/teleflag"
)

// experiment couples an id with lazily computed results.
type experiment struct {
	id     string
	title  string
	xName  string // non-empty for series experiments
	series func() []bench.Series
	table  func() bench.Table
	perf   func() bench.PerfReport
}

func experiments() []experiment {
	return []experiment{
		{id: "fig6a", title: "Fig. 6(a): fps vs search-area size (1080p, 1 RF)", xName: "SA[px]", series: bench.Fig6a},
		{id: "fig6b", title: "Fig. 6(b): fps vs reference frames (1080p, SA 32x32)", xName: "RFs", series: bench.Fig6b},
		{id: "fig7a", title: "Fig. 7(a): per-frame time [ms], SysHK, SA 64x64", xName: "frame", series: bench.Fig7a},
		{id: "fig7b", title: "Fig. 7(b): per-frame time [ms], SysHK, SA 32x32 (+load events)", xName: "frame", series: bench.Fig7b},
		{id: "speedups", table: bench.Speedups},
		{id: "overhead", table: bench.Overhead},
		{id: "share", table: bench.ModuleShare},
		{id: "ablation", table: bench.AblationBalancers},
		{id: "engines", table: bench.AblationEngines},
		{id: "accuracy", table: bench.PredictionAccuracy},
		{id: "workload", table: bench.WorkloadPredictability},
		{id: "scaling", table: bench.GPUScaling},
		{id: "failover", title: "V3: per-frame time [ms], SysNFK, GPU_F dies at frame 20", xName: "frame", series: bench.Failover},
		{id: "perf", title: "V4: control-path performance (regression-gated)", perf: bench.Perf},
		{id: "fleet", table: bench.FleetScaling},
		{id: "fleetdeath", table: bench.FleetDeath},
		{id: "fleetshed", table: bench.FleetShed},
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see package doc) or 'all'")
	format := flag.String("format", "text", "output format: text json")
	jsonFiles := flag.Bool("json", false,
		"additionally write each experiment's result to BENCH_<id>.json in the current directory")
	jsonFile := flag.String("json-file", "",
		"override the BENCH_<id>.json filename (single experiment only; implies -json)")
	compare := flag.String("compare", "",
		"baseline BENCH_*.json to diff the perf experiment against; exit 1 on regression")
	tol := flag.Float64("tol", 0.15, "relative tolerance for -compare")
	check := flag.Bool("check", false, "validate every frame's schedule against the Algorithm-2 invariants")
	faults := flag.String("inject-faults", "",
		"deterministic fault spec applied to every platform (die:DEV@F stall:DEV@F[+K] slow:DEV@FxR[+K] chaos:SEEDxRATE, ';'-separated)")
	slack := flag.Float64("deadline-slack", 0,
		"arm autonomous failover: per-sync-point deadlines at LP prediction x slack (0 = off)")
	tf := teleflag.Register()
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "feves-bench: unknown format %q\n", *format)
		os.Exit(2)
	}
	obs, closeTelemetry, err := tf.Observer()
	if err != nil {
		fmt.Fprintf(os.Stderr, "feves-bench: %v\n", err)
		os.Exit(1)
	}
	bench.Observer = obs
	bench.CheckSchedules = *check
	bench.FaultSpec = *faults
	bench.DeadlineSlack = *slack
	if *faults != "" && *slack == 0 {
		fmt.Fprintln(os.Stderr, "feves-bench: note: -inject-faults without -deadline-slack slows frames but never fails over")
	}

	type jsonOut struct {
		ID     string            `json:"id"`
		Title  string            `json:"title,omitempty"`
		Series []bench.Series    `json:"series,omitempty"`
		Table  *bench.Table      `json:"table,omitempty"`
		Perf   *bench.PerfReport `json:"perf,omitempty"`
	}
	var outputs []jsonOut
	if *jsonFile != "" {
		if *exp == "all" {
			fmt.Fprintln(os.Stderr, "feves-bench: -json-file needs a single -exp")
			os.Exit(2)
		}
		*jsonFiles = true
	}

	// writeJSON dumps one experiment's machine-readable result next to the
	// working directory so harnesses can diff runs without parsing text.
	writeJSON := func(out jsonOut) {
		if !*jsonFiles {
			return
		}
		name := fmt.Sprintf("BENCH_%s.json", out.ID)
		if *jsonFile != "" {
			name = *jsonFile
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "feves-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "feves-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", name)
	}

	found := false
	for _, e := range experiments() {
		if *exp != "all" && *exp != e.id {
			continue
		}
		found = true
		switch {
		case e.perf != nil:
			p := e.perf()
			out := jsonOut{ID: e.id, Title: e.title, Perf: &p}
			if *format == "json" {
				outputs = append(outputs, out)
			} else {
				fmt.Println()
				fmt.Print(bench.FormatTable(bench.PerfTable(p)))
			}
			writeJSON(out)
			if *compare != "" {
				data, err := os.ReadFile(*compare)
				if err != nil {
					fmt.Fprintf(os.Stderr, "feves-bench: %v\n", err)
					os.Exit(1)
				}
				var base jsonOut
				if err := json.Unmarshal(data, &base); err != nil {
					fmt.Fprintf(os.Stderr, "feves-bench: %s: %v\n", *compare, err)
					os.Exit(1)
				}
				if base.Perf == nil {
					fmt.Fprintf(os.Stderr, "feves-bench: %s has no perf report\n", *compare)
					os.Exit(1)
				}
				if fails := bench.ComparePerf(*base.Perf, p, *tol); len(fails) > 0 {
					for _, f := range fails {
						fmt.Fprintf(os.Stderr, "feves-bench: perf regression: %s\n", f)
					}
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "perf gate green vs %s (tol %.0f%%)\n", *compare, 100**tol)
			}
		case e.series != nil:
			s := e.series()
			out := jsonOut{ID: e.id, Title: e.title, Series: s}
			if *format == "json" {
				outputs = append(outputs, out)
			} else {
				fmt.Println()
				fmt.Print(bench.FormatSeries(e.title, e.xName, s))
			}
			writeJSON(out)
		default:
			t := e.table()
			out := jsonOut{ID: e.id, Title: t.Title, Table: &t}
			if *format == "json" {
				outputs = append(outputs, out)
			} else {
				fmt.Println()
				fmt.Print(bench.FormatTable(t))
			}
			writeJSON(out)
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "feves-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outputs); err != nil {
			fmt.Fprintf(os.Stderr, "feves-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if err := closeTelemetry(); err != nil {
		fmt.Fprintf(os.Stderr, "feves-bench: %v\n", err)
		os.Exit(1)
	}
}
