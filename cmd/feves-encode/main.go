// Command feves-encode encodes video through the FEVES framework on a
// simulated heterogeneous platform, producing a real bitstream plus the
// per-frame timing of the collaborative schedule.
//
// Input is either raw planar YUV 4:2:0 (-in file) or a built-in synthetic
// sequence (-synthetic N). The output bitstream is this reproduction's own
// container, verifiable with the same tool (-verify).
//
// Examples:
//
//	feves-encode -w 640 -h 352 -synthetic 30 -platform syshk -o out.fvs
//	feves-encode -w 1920 -h 1088 -in video.yuv -sa 32 -rf 2 -o out.fvs
//	feves-encode -verify out.fvs
//
// Observability (see README §Observability): -metrics-addr serves a live
// Prometheus scrape, -events writes the JSONL event stream including the
// per-frame balancer audit, -perfetto writes the whole run's schedule as a
// Perfetto-loadable timeline:
//
//	feves-encode -synthetic 60 -metrics-addr :9090 -events run.jsonl -perfetto run.trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"feves"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/teleflag"
	"feves/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("feves-encode: ")
	var (
		width     = flag.Int("w", 640, "frame width (multiple of 16)")
		height    = flag.Int("h", 352, "frame height (multiple of 16)")
		in        = flag.String("in", "", "raw I420 input file ('' = synthetic)")
		synthetic = flag.Int("synthetic", 30, "synthetic frame count when -in is empty")
		seed      = flag.Uint64("seed", 1, "synthetic content seed")
		sa        = flag.Int("sa", 32, "search-area size in pixels (SAxSA)")
		rf        = flag.Int("rf", 1, "reference frames")
		iqp       = flag.Int("iqp", 27, "intra-frame QP")
		pqp       = flag.Int("pqp", 28, "inter-frame QP")
		platform  = flag.String("platform", "syshk", "platform: syshk sysnf sysnff cpun cpuh gpuf gpuk gput")
		balancer  = flag.String("balancer", "lp", "balancer: lp proportional equidistant me-offload")
		entropy   = flag.String("entropy", "vlc", "residual entropy backend: vlc arith")
		meAlgo    = flag.String("me", "full-search", "motion search: full-search three-step diamond")
		bitrate   = flag.Int("bpf", 0, "target bits per frame (0 = fixed QP)")
		checksum  = flag.Bool("crc", false, "append per-frame CRC-32 trailers")
		intraP    = flag.Int("intra-period", 0, "IDR refresh period (0 = IPPP)")
		sceneCut  = flag.Float64("scenecut", 0, "adaptive IDR threshold (0 = off)")
		slices    = flag.Int("slices", 1, "independently decodable slices per frame")
		preset    = flag.String("content", "medium", "synthetic content: low medium high toys tomatoes")
		out       = flag.String("o", "", "output bitstream file ('' = discard)")
		verify    = flag.String("verify", "", "verify a bitstream file and exit")
		check     = flag.Bool("check", false, "validate every frame's schedule against the Algorithm-2 invariants")
		faults    = flag.String("inject-faults", "",
			"deterministic fault spec (die:DEV@F stall:DEV@F[+K] slow:DEV@FxR[+K] chaos:SEEDxRATE, ';'-separated)")
		slack = flag.Float64("deadline-slack", 0,
			"arm autonomous failover: per-sync-point deadlines at LP prediction x slack (0 = off)")
		retries   = flag.Int("max-retries", 0, "failover attempts per frame (0 = default 3)")
		fparallel = flag.Bool("frame-parallel", false,
			"encode two inter frames in flight over dual reference chains")
	)
	tf := teleflag.Register()
	flag.Parse()

	if *verify != "" {
		stream, err := os.ReadFile(*verify)
		if err != nil {
			log.Fatal(err)
		}
		si, err := codec.Inspect(stream)
		if err != nil {
			log.Fatalf("%s: corrupt after %d frames: %v", *verify, len(si.Frames), err)
		}
		cfg := si.Config
		fmt.Printf("%s: OK, %d frames, %dx%d, SA %dx%d, %d RF, QP {%d,%d}, entropy %s\n",
			*verify, len(si.Frames), cfg.Width, cfg.Height,
			2*cfg.SearchRange, 2*cfg.SearchRange, cfg.NumRF, cfg.IQP, cfg.PQP, cfg.Entropy)
		var iFrames int
		for _, fr := range si.Frames {
			if fr.Intra {
				iFrames++
			}
		}
		fmt.Printf("coded: %d bits total (%.1f kbit/frame), %d intra / %d inter\n",
			si.TotalBits(), float64(si.TotalBits())/float64(len(si.Frames))/1000,
			iFrames, len(si.Frames)-iFrames)
		hist := si.ModeHistogram()
		fmt.Printf("inter partition modes:")
		for m, c := range hist {
			if c > 0 {
				fmt.Printf(" %v:%d", h264.PartMode(m), c)
			}
		}
		fmt.Println()
		return
	}

	pl, err := lookupPlatform(*platform)
	if err != nil {
		log.Fatal(err)
	}
	if err := pl.InjectFaults(*faults); err != nil {
		log.Fatal(err)
	}
	obs, closeTelemetry, err := tf.Observer()
	if err != nil {
		log.Fatal(err)
	}
	cfg := feves.Config{
		Observer: obs,
		Width:    *width, Height: *height,
		SearchArea: *sa, RefFrames: *rf, IQP: *iqp, PQP: *pqp,
		ArithmeticCoding:   *entropy == "arith",
		FastME:             *meAlgo,
		TargetBitsPerFrame: *bitrate,
		Checksum:           *checksum,
		IntraPeriod:        *intraP,
		SceneCutThreshold:  *sceneCut,
		Slices:             *slices,
		CheckSchedules:     *check,
		DeadlineSlack:      *slack,
		MaxFrameRetries:    *retries,
		FrameParallel:      *fparallel,
	}
	if *entropy != "vlc" && *entropy != "arith" {
		log.Fatalf("unknown entropy backend %q", *entropy)
	}
	switch *balancer {
	case "lp":
	case "proportional":
		cfg.Balancer = feves.BalancerProportional
	case "equidistant":
		cfg.Balancer = feves.BalancerEquidistant
	case "me-offload":
		cfg.Balancer = feves.BalancerMEOffload
	default:
		log.Fatalf("unknown balancer %q", *balancer)
	}

	var src video.Source
	if *in == "" {
		switch *preset {
		case "low":
			src = video.NewSyntheticClass(*width, *height, *synthetic, *seed, video.LowMotion)
		case "medium":
			src = video.NewSynthetic(*width, *height, *synthetic, *seed)
		case "high":
			src = video.NewSyntheticClass(*width, *height, *synthetic, *seed, video.HighMotion)
		case "toys":
			src = video.ToysAndCalendar(*width, *height, *synthetic)
		case "tomatoes":
			src = video.RollingTomatoes(*width, *height, *synthetic)
		default:
			log.Fatalf("unknown content preset %q", *preset)
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src, err = video.NewYUVReader(f, *width, *height)
		if err != nil {
			log.Fatal(err)
		}
	}

	enc, err := feves.NewEncoder(cfg, pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoding on %s (%v), SA %dx%d, %d RF\n", pl.Name(), pl.Devices(), *sa, *sa, *rf)
	n := 0
	printRep := func(rep feves.FrameReport) {
		switch {
		case rep.Intra:
			fmt.Printf("frame %3d I %8d bits  PSNR-Y %5.2f dB\n", rep.Frame, rep.Bits, rep.PSNRY)
		case rep.PairSeconds > 0:
			fmt.Printf("frame %3d P %8d bits  PSNR-Y %5.2f dB  τtot %6.2f ms (%5.1f fps, pair c%d)  ME rows %v\n",
				rep.Frame, rep.Bits, rep.PSNRY, rep.Seconds*1e3, rep.FPS, rep.Chain, rep.MERows)
		default:
			fmt.Printf("frame %3d P %8d bits  PSNR-Y %5.2f dB  τtot %6.2f ms (%5.1f fps)  ME rows %v\n",
				rep.Frame, rep.Bits, rep.PSNRY, rep.Seconds*1e3, rep.FPS, rep.MERows)
		}
		n++
	}
	// With -frame-parallel, frames are offered to the encoder in pairs; the
	// encoder reports how many it consumed (one at intra boundaries, during
	// model initialization, and after an in-pair scene cut) and the
	// unconsumed frame is re-offered.
	var pending []byte
	for {
		cur := pending
		pending = nil
		if cur == nil {
			frame, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			cur = frame.PackedYUV()
		}
		if !*fparallel {
			rep, err := enc.EncodeYUV(cur)
			if err != nil {
				log.Fatal(err)
			}
			printRep(rep)
			continue
		}
		var next []byte
		if frame, err := src.Next(); err == nil {
			next = frame.PackedYUV()
		} else if err != io.EOF {
			log.Fatal(err)
		}
		reps, err := enc.EncodeYUVPair(cur, next)
		if err != nil {
			log.Fatal(err)
		}
		for _, rep := range reps {
			printRep(rep)
		}
		if len(reps) == 1 && next != nil {
			pending = next
		}
	}
	stream := enc.Bitstream()
	fmt.Printf("%d frames, %d bytes coded\n", n, len(stream))
	if *out != "" {
		if err := os.WriteFile(*out, stream, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if err := closeTelemetry(); err != nil {
		log.Fatal(err)
	}
}

func lookupPlatform(name string) (*feves.Platform, error) {
	switch name {
	case "syshk":
		return feves.SysHK(), nil
	case "sysnf":
		return feves.SysNF(), nil
	case "sysnff":
		return feves.SysNFF(), nil
	case "cpun":
		return feves.CPUNehalem(), nil
	case "cpuh":
		return feves.CPUHaswell(), nil
	case "gpuf":
		return feves.GPUFermi(), nil
	case "gpuk":
		return feves.GPUKepler(), nil
	case "gput":
		return feves.GPUTesla(), nil
	}
	return nil, fmt.Errorf("unknown platform %q", name)
}
