package feves

import (
	"fmt"

	"feves/internal/core"
	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/pool"
	"feves/internal/vcm"
)

// Pool shares one platform among several concurrent encode or simulation
// sessions. Every session leases a disjoint, non-empty subset of the
// devices; on each arrival or departure the pool re-partitions the
// platform with a second-level LP that equalizes the sessions' predicted
// frame times, and running sessions pick up their new lease at the next
// frame boundary. Functional encoding stays bit-exact through every
// re-partition — output never depends on which devices a session held.
type Pool struct {
	p *pool.Pool
}

// NewPool creates a pool over the platform's devices.
func NewPool(pl *Platform) (*Pool, error) {
	p, err := pool.New(pl.inner)
	if err != nil {
		return nil, err
	}
	return &Pool{p: p}, nil
}

// Capacity returns the device count — the maximum number of concurrent
// sessions (each lease must hold at least one device).
func (p *Pool) Capacity() int { return p.p.Capacity() }

// Sessions returns the number of live sessions.
func (p *Pool) Sessions() int { return p.p.Sessions() }

// Session is one tenant of a Pool: a framework bound to the session's
// current device lease. A Session is not safe for concurrent use; run
// each session on its own goroutine.
type Session struct {
	pool   *Pool
	lease  *pool.Lease
	fw     *core.Framework
	cfg    Config
	mode   vcm.Mode
	epoch  uint64
	closed bool
	repart int
	// buffered holds the second report of a frame-parallel pair until the
	// next Step call (simulation sessions only).
	buffered *FrameReport
}

// NewSimulationSession joins the pool with a timing-only session.
func (p *Pool) NewSimulationSession(cfg Config) (*Session, error) {
	return p.newSession(cfg, vcm.TimingOnly)
}

// NewEncoderSession joins the pool with a functional encoding session.
func (p *Pool) NewEncoderSession(cfg Config) (*Session, error) {
	return p.newSession(cfg, vcm.Functional)
}

func (p *Pool) newSession(cfg Config, mode vcm.Mode) (*Session, error) {
	cfg = cfg.withDefaults()
	cc, err := cfg.codecConfig()
	if err != nil {
		return nil, err
	}
	w := device.Workload{
		MBW: cfg.Width / h264.MBSize, MBH: cfg.Height / h264.MBSize,
		SA: cfg.SearchArea, NumRF: cfg.RefFrames, UsableRF: cfg.RefFrames,
	}
	lease, err := p.p.Acquire(w)
	if err != nil {
		return nil, err
	}
	// Every tenant gets its own telemetry scope: the session label rides on
	// each event, metric sample and trace slice, and the Perfetto timeline
	// grows one process lane per tenant.
	label := cfg.SessionLabel
	if label == "" {
		label = fmt.Sprintf("session-%d", lease.ID())
	}
	sub, epoch := lease.Snapshot()
	fw, err := core.New(core.Options{
		Platform:       sub,
		Codec:          cc,
		Mode:           mode,
		Balancer:       cfg.Balancer.build(cfg.BalancerHysteresis),
		Alpha:          cfg.Alpha,
		Parallel:       cfg.Parallel,
		Telemetry:      cfg.Observer.Sink().ForSession(label),
		CheckSchedules: cfg.CheckSchedules,
		FrameParallel:  cfg.FrameParallel,
	})
	if err != nil {
		lease.Release()
		return nil, err
	}
	return &Session{pool: p, lease: lease, fw: fw, cfg: cfg, mode: mode, epoch: epoch}, nil
}

// maybeReplatform re-targets the framework when the pool re-partitioned
// since the last frame.
func (s *Session) maybeReplatform() error {
	sub, epoch := s.lease.Snapshot()
	if epoch == s.epoch {
		return nil
	}
	if err := s.fw.SetPlatform(sub); err != nil {
		return err
	}
	s.epoch = epoch
	s.repart++
	return nil
}

// Step simulates the next frame on the session's current lease
// (simulation sessions only).
func (s *Session) Step() (FrameReport, error) {
	if s.closed {
		return FrameReport{}, fmt.Errorf("feves: session closed")
	}
	if s.mode != vcm.TimingOnly {
		return FrameReport{}, fmt.Errorf("feves: Step on an encoder session (use EncodeYUV)")
	}
	if s.buffered != nil {
		fr := *s.buffered
		s.buffered = nil
		return fr, nil
	}
	if err := s.maybeReplatform(); err != nil {
		return FrameReport{}, err
	}
	ra, rb, paired, err := s.fw.EncodePair(nil, nil)
	if err != nil {
		return FrameReport{}, err
	}
	if paired {
		frB := report(rb)
		s.buffered = &frB
	}
	return report(ra), nil
}

// EncodeYUV encodes the next packed I420 frame on the session's current
// lease (encoder sessions only).
func (s *Session) EncodeYUV(yuv []byte) (FrameReport, error) {
	if s.closed {
		return FrameReport{}, fmt.Errorf("feves: session closed")
	}
	if s.mode != vcm.Functional {
		return FrameReport{}, fmt.Errorf("feves: EncodeYUV on a simulation session (use Step)")
	}
	if err := s.maybeReplatform(); err != nil {
		return FrameReport{}, err
	}
	f := h264.NewFrame(s.cfg.Width, s.cfg.Height)
	f.Poc = s.fw.FramesProcessed()
	if err := f.LoadYUV(yuv); err != nil {
		return FrameReport{}, err
	}
	r, err := s.fw.EncodeNext(f)
	if err != nil {
		return FrameReport{}, err
	}
	return report(r), nil
}

// EncodeYUVPair offers the next two packed I420 frames for joint
// frame-parallel encoding on the session's current lease. Like
// Encoder.EncodeYUVPair it returns one report per frame consumed; lease
// changes are absorbed at pair boundaries, so both frames of a pair run
// on the same device subset.
func (s *Session) EncodeYUVPair(yuvA, yuvB []byte) ([]FrameReport, error) {
	if s.closed {
		return nil, fmt.Errorf("feves: session closed")
	}
	if s.mode != vcm.Functional {
		return nil, fmt.Errorf("feves: EncodeYUVPair on a simulation session (use Step)")
	}
	if err := s.maybeReplatform(); err != nil {
		return nil, err
	}
	fA := h264.NewFrame(s.cfg.Width, s.cfg.Height)
	fA.Poc = s.fw.FramesProcessed()
	if err := fA.LoadYUV(yuvA); err != nil {
		return nil, err
	}
	var fB *h264.Frame
	if yuvB != nil {
		fB = h264.NewFrame(s.cfg.Width, s.cfg.Height)
		fB.Poc = fA.Poc + 1
		if err := fB.LoadYUV(yuvB); err != nil {
			return nil, err
		}
	}
	ra, rb, paired, err := s.fw.EncodePair(fA, fB)
	if err != nil {
		return nil, err
	}
	if paired {
		return []FrameReport{report(ra), report(rb)}, nil
	}
	return []FrameReport{report(ra)}, nil
}

// Bitstream returns an encoder session's coded stream so far.
func (s *Session) Bitstream() []byte { return s.fw.Bitstream() }

// Devices names the devices of the session's current lease (in the
// lease's scheduling order, GPUs first).
func (s *Session) Devices() []string {
	sub, _ := s.lease.Snapshot()
	out := make([]string, sub.NumDevices())
	for i := range out {
		out[i] = sub.Dev(i).Name
	}
	return out
}

// Repartitions returns how many lease changes the session has absorbed
// at frame boundaries.
func (s *Session) Repartitions() int { return s.repart }

// Close releases the session's lease back to the pool, re-partitioning
// the freed devices among the remaining sessions. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.lease.Release()
}
