// Custom platforms: model machines the paper never tested — an 8-core
// workstation with one fast and one slow GPU, and a CPU-heavy node whose
// GPU is so weak that the framework flips to a CPU-centric configuration
// (R* on the cores) automatically.
package main

import (
	"fmt"
	"log"

	"feves"
)

func main() {
	log.SetFlags(0)
	cfg := feves.Config{Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 2}

	// A mixed workstation: GPU speeds are relative to the Fermi GTX 580
	// (2.0 ≈ a Kepler-class card), CPU speed relative to a Nehalem core.
	ws, err := feves.CustomPlatform("workstation", []float64{2.0, 0.7}, 8, 1.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform %q devices: %v\n", ws.Name(), ws.Devices())

	sim, err := feves.NewSimulation(cfg, ws)
	if err != nil {
		log.Fatal(err)
	}
	reports, err := sim.Run(8)
	if err != nil {
		log.Fatal(err)
	}
	last := reports[len(reports)-1]
	fmt.Printf("steady rate: %.1f fps; R* runs on device %d (%s)\n",
		last.FPS, last.RStarDevice, ws.Devices()[last.RStarDevice])
	fmt.Printf("ME row shares: %v\n", last.MERows)
	fmt.Printf("(the fast GPU takes the bulk; the slow GPU and the 8 cores mop up)\n\n")

	// A CPU-heavy node: 16 strong cores, one feeble GPU. The R* placement
	// should go CPU-centric.
	node, err := feves.CustomPlatform("cpu-node", []float64{0.05}, 16, 2.5)
	if err != nil {
		log.Fatal(err)
	}
	sim2, err := feves.NewSimulation(cfg, node)
	if err != nil {
		log.Fatal(err)
	}
	reports2, err := sim2.Run(8)
	if err != nil {
		log.Fatal(err)
	}
	last2 := reports2[len(reports2)-1]
	kind := "GPU-centric"
	if last2.RStarDevice >= 1 { // device 0 is the only GPU
		kind = "CPU-centric"
	}
	fmt.Printf("platform %q: %.1f fps, R* on device %d → %s configuration\n",
		node.Name(), last2.FPS, last2.RStarDevice, kind)
}
