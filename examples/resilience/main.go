// Error resilience with slices: encode with independently decodable
// slices, corrupt the transmitted bitstream, and compare strict decoding
// (fails) with slice concealment (the damage stays inside one slice of one
// frame).
package main

import (
	"fmt"
	"log"

	"feves"
	"feves/internal/video"
)

func main() {
	log.SetFlags(0)
	const w, h, n = 128, 96, 10

	cfg := feves.Config{
		Width: w, Height: h,
		SearchArea:       32,
		Slices:           3,    // three independently decodable slices/frame
		ArithmeticCoding: true, // per-slice arithmetic chunks
	}
	enc, err := feves.NewEncoder(cfg, feves.SysNF())
	if err != nil {
		log.Fatal(err)
	}
	src := video.NewSynthetic(w, h, n, 99)
	for i := 0; i < n; i++ {
		if _, err := enc.EncodeYUV(src.FrameAt(i).PackedYUV()); err != nil {
			log.Fatal(err)
		}
	}
	stream := enc.Bitstream()
	fmt.Printf("encoded %d frames, %d bytes, 3 slices per frame\n\n", n, len(stream))

	// Simulate transmission damage: walk byte positions until the flip
	// lands in a slice's residual chunk (header damage is not concealable
	// by design — headers carry the frame's structure).
	for pos := len(stream) / 3; pos < len(stream); pos += 7 {
		corrupt := append([]byte(nil), stream...)
		corrupt[pos] ^= 0xA5
		if _, err := feves.Verify(corrupt); err == nil {
			continue // flip was harmless
		}
		frames, concealed, err := feves.VerifyConcealing(corrupt)
		if err != nil || concealed == 0 {
			continue // hit a header; try elsewhere
		}
		cframes, cerr := func() (int, error) { n, e := feves.Verify(corrupt); return n, e }()
		fmt.Printf("byte %d flipped:\n", pos)
		fmt.Printf("strict decoder:     failed after %d frames (%v)\n", cframes, cerr)
		fmt.Printf("concealing decoder: all %d frames decoded, %d slice(s) concealed\n", frames, concealed)
		fmt.Println("\nwith slices, a corrupt chunk degrades only its own macroblock rows;")
		fmt.Println("the other slices of the frame decode bit-exactly and the sequence")
		fmt.Println("continues (drift limited to regions predicted from the damaged rows).")
		return
	}
	fmt.Println("no concealable corruption found in this sweep")
}
