// Quickstart: encode a short synthetic sequence collaboratively on the
// simulated SysHK platform (quad-core Haswell + Kepler GPU), print the
// per-frame results, and verify the produced bitstream end to end.
package main

import (
	"fmt"
	"log"

	"feves"
	"feves/internal/video"
)

func main() {
	log.SetFlags(0)
	const w, h, frames = 320, 192, 20

	cfg := feves.Config{
		Width:      w,
		Height:     h,
		SearchArea: 32, // the paper's default 32×32 search area
		RefFrames:  2,
	}
	enc, err := feves.NewEncoder(cfg, feves.SysHK())
	if err != nil {
		log.Fatal(err)
	}

	src := video.NewSynthetic(w, h, frames, 42)
	var totalBits int
	for i := 0; i < frames; i++ {
		frame := src.FrameAt(i)
		rep, err := enc.EncodeYUV(frame.PackedYUV())
		if err != nil {
			log.Fatal(err)
		}
		totalBits += rep.Bits
		if rep.Intra {
			fmt.Printf("frame %2d  I  %7d bits  PSNR-Y %.2f dB\n", rep.Frame, rep.Bits, rep.PSNRY)
			continue
		}
		fmt.Printf("frame %2d  P  %7d bits  PSNR-Y %.2f dB  simulated τtot %.2f ms  R* on device %d\n",
			rep.Frame, rep.Bits, rep.PSNRY, rep.Seconds*1e3, rep.RStarDevice)
	}

	stream := enc.Bitstream()
	n, err := feves.Verify(stream)
	if err != nil {
		log.Fatalf("bitstream verification failed: %v", err)
	}
	fmt.Printf("\nencoded %d frames into %d bytes (%.1f kbit/frame); decoder verified all %d frames\n",
		frames, len(stream), float64(totalBits)/float64(frames)/1000, n)
}
