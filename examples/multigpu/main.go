// Multi-GPU scaling: compare single-device executions with the SysNFF
// platform (CPU_N + two Fermi GPUs) across balancing strategies, showing
// why the paper's LP balancer — not an equidistant split — is what makes a
// heterogeneous multi-GPU system pay off.
package main

import (
	"fmt"
	"log"

	"feves"
)

func main() {
	log.SetFlags(0)
	cfg := feves.Config{Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 1}

	fps := func(c feves.Config, pl *feves.Platform) float64 {
		v, err := feves.SteadyFPS(c, pl)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}

	fmt.Println("1080p steady-state encoding rate, SA 32x32, 1 RF")
	fmt.Println()
	fmt.Printf("%-34s %8s\n", "configuration", "fps")
	fmt.Printf("%-34s %8.1f\n", "CPU_N alone (4 cores)", fps(cfg, feves.CPUNehalem()))
	fmt.Printf("%-34s %8.1f\n", "GPU_F alone", fps(cfg, feves.GPUFermi()))

	eq := cfg
	eq.Balancer = feves.BalancerEquidistant
	prop := cfg
	prop.Balancer = feves.BalancerProportional
	fmt.Printf("%-34s %8.1f\n", "SysNFF, equidistant split [8]", fps(eq, feves.SysNFF()))
	fmt.Printf("%-34s %8.1f\n", "SysNFF, speed-proportional", fps(prop, feves.SysNFF()))
	fmt.Printf("%-34s %8.1f\n", "SysNFF, FEVES LP balancer", fps(cfg, feves.SysNFF()))

	fmt.Println()
	fmt.Println("the equidistant split of multi-GPU prior work stalls on the slowest")
	fmt.Println("device (a CPU core), while the LP balancer sizes every device's share")
	fmt.Println("to hit the synchronization points simultaneously.")

	// Scaling across RF counts, where the ME/SME load grows linearly.
	fmt.Println()
	fmt.Printf("%-6s %10s %10s %10s\n", "RFs", "GPU_F", "SysNF", "SysNFF")
	for rf := 1; rf <= 4; rf++ {
		c := cfg
		c.RefFrames = rf
		fmt.Printf("%-6d %10.1f %10.1f %10.1f\n", rf,
			fps(c, feves.GPUFermi()), fps(c, feves.SysNF()), fps(c, feves.SysNFF()))
	}
}
