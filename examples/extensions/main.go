// Extensions beyond the paper: arithmetic entropy coding, rate control,
// scene-cut adaptive IDR, fast motion estimation and parallel kernel
// execution — all composable through the public configuration, all
// producing verifiable bitstreams.
package main

import (
	"fmt"
	"log"

	"feves"
	"feves/internal/video"
)

func main() {
	log.SetFlags(0)
	const w, h = 96, 96

	// Content with a scene change in the middle: "toys"-like low motion,
	// then "tomatoes"-like high motion.
	calm := video.ToysAndCalendar(w, h, 6)
	wild := video.RollingTomatoes(w, h, 6)
	var frames [][]byte
	for i := 0; i < 6; i++ {
		frames = append(frames, calm.FrameAt(i).PackedYUV())
	}
	for i := 0; i < 6; i++ {
		// Hard cut: the second scene is tonally inverted so inter
		// prediction from the first scene fails outright.
		yuv := wild.FrameAt(i).PackedYUV()
		for p := 0; p < w*h; p++ {
			yuv[p] = 255 - yuv[p]
		}
		frames = append(frames, yuv)
	}

	cfg := feves.Config{
		Width: w, Height: h,
		SearchArea:         32,
		RefFrames:          2,
		ArithmeticCoding:   true, // CABAC-style entropy backend
		TargetBitsPerFrame: 15000,
		SceneCutThreshold:  12,   // adaptive IDR at the splice
		Checksum:           true, // per-frame CRC-32 trailers
		FastME:             "diamond",
		Parallel:           true, // concurrent kernels, bit-exact
	}
	enc, err := feves.NewEncoder(cfg, feves.SysHK())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frame  type   bits   PSNR-Y")
	for i, f := range frames {
		rep, err := enc.EncodeYUV(f)
		if err != nil {
			log.Fatal(err)
		}
		kind := "P"
		if rep.Intra {
			kind = "I"
		}
		note := ""
		if rep.Intra && i == 6 {
			note = "   <- scene cut detected, IDR inserted"
		}
		fmt.Printf("%5d  %s  %7d  %5.2f dB%s\n", rep.Frame, kind, rep.Bits, rep.PSNRY, note)
	}

	n, err := feves.Verify(enc.Bitstream())
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("\n%d frames verified (arithmetic entropy + CRC trailers), %d bytes total\n",
		n, len(enc.Bitstream()))
}
