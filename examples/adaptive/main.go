// Adaptive load balancing under system load (the paper's Fig. 7 scenario):
// simulate 1080p encoding on SysHK while "other processes" slow the GPU at
// selected frames, and watch the framework re-characterize and recover
// within a single frame.
package main

import (
	"fmt"
	"log"
	"strings"

	"feves"
)

func main() {
	log.SetFlags(0)

	pl := feves.SysHK()
	// Slow the GPU 2.5× during inter-frames 12 and 25 — the transient load
	// events the paper observed on its non-dedicated system.
	events := map[int]bool{12: true, 25: true}
	pl.Perturb(func(frame, dev int) float64 {
		if dev == 0 && events[frame] {
			return 2.5
		}
		return 1
	})

	sim, err := feves.NewSimulation(feves.Config{
		Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 1,
	}, pl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-frame inter-loop time on SysHK (1080p, SA 32x32, 1 RF)")
	fmt.Println("frame 1 uses the equidistant initialization; GPU load events at frames 12 and 25")
	fmt.Println()
	reports, err := sim.Run(31)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports[1:] {
		ms := r.Seconds * 1e3
		bar := strings.Repeat("#", int(ms*1.5))
		note := ""
		if events[r.Frame] {
			note = "  <- GPU slowed 2.5x"
		}
		rt := " "
		if r.FPS >= 25 {
			rt = "*" // real-time
		}
		fmt.Printf("frame %2d %6.2f ms %s |%s%s\n", r.Frame, ms, rt, bar, note)
	}
	fmt.Println("\n(*) real-time (≥25 fps). Note the single-frame spike and immediate")
	fmt.Println("recovery: the performance characterization absorbs the event and the")
	fmt.Println("next LP distribution shifts rows back to the CPU cores and back again.")
}
