// Package feves is the public API of the FEVES reproduction: an autonomous
// framework for collaborative H.264/AVC inter-loop video encoding on
// simulated heterogeneous multi-core CPU + multi-GPU platforms, after
// "FEVES: Framework for Efficient Parallel Video Encoding on Heterogeneous
// Systems" (Ilic, Momcilovic, Roma, Sousa — ICPP 2014).
//
// Two ways to use it:
//
//   - Encoder: feed YUV 4:2:0 frames and get a real bitstream plus
//     per-frame timing of the simulated collaborative schedule (Functional
//     mode). The encoding is bit-exact regardless of the platform the
//     work is balanced across.
//   - Simulate: run the framework in timing-only mode at any resolution
//     (e.g. the paper's 1080p) to reproduce the paper's experiments
//     cheaply; kernels are skipped, which is sound because full-search
//     motion estimation has content-independent cost.
//
// Platforms are built from calibrated device profiles (the paper's CPU_N,
// CPU_H, GPU_F, GPU_K) or custom ones; the per-frame load balancing,
// performance characterization, data-access management and synchronization
// structure all follow the paper's Algorithms 1 and 2.
package feves

import (
	"errors"
	"fmt"
	"io"
	"time"

	"feves/internal/core"
	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/h264/me"
	"feves/internal/sched"
	"feves/internal/vcm"
)

// Config holds the sequence-level coding parameters.
type Config struct {
	// Width and Height are the frame dimensions in pixels (multiples of 16).
	Width, Height int
	// SearchArea is the SA size in pixels as the paper quotes it: 32 means
	// a 32×32 search area (±16 pel displacement).
	SearchArea int
	// RefFrames is the number of reference frames (1–16).
	RefFrames int
	// IQP and PQP are the intra-/inter-frame quantization parameters; the
	// zero value selects the paper's {27, 28}.
	IQP, PQP int
	// Balancer selects the load-balancing strategy; zero value is the
	// paper's LP balancer.
	Balancer BalancerKind
	// BalancerHysteresis (LP balancer only) keeps the previous frame's
	// distribution unless the new solution improves predicted τtot by more
	// than this fraction, damping jitter-induced oscillation. 0 reproduces
	// the paper's per-frame re-optimization.
	BalancerHysteresis float64
	// Alpha is the EWMA weight of the performance characterization
	// (0 → default 0.8).
	Alpha float64
	// ArithmeticCoding switches the residual entropy backend from the
	// Baseline-profile CAVLC-style VLC to this reproduction's CABAC-style
	// adaptive binary arithmetic coder (typically a few percent smaller
	// streams at identical reconstruction).
	ArithmeticCoding bool
	// IntraPeriod inserts an IDR refresh every IntraPeriod frames (0 =
	// the paper's IPPP structure with a single leading intra frame).
	IntraPeriod int
	// FastME selects a fast motion-search algorithm instead of the
	// paper's full search: "" or "full-search" (default), "three-step",
	// "diamond". Fast ME makes the workload content-dependent, which is
	// exactly what the paper's FSBM choice avoids; provided for ablations.
	FastME string
	// TargetBitsPerFrame enables reactive rate control on the inter-frame
	// QP (0 = the paper's fixed-QP operation).
	TargetBitsPerFrame int
	// Checksum appends a CRC-32 of every reconstructed frame so decoders
	// detect corruption and encoder/decoder drift.
	Checksum bool
	// SceneCutThreshold enables adaptive IDR insertion when inter
	// prediction fails frame-wide (mean motion-compensated cost per pixel
	// above the threshold). 0 disables; typical values 5–15.
	SceneCutThreshold float64
	// Parallel runs the functional encoding kernels of disjoint row
	// ranges on concurrent goroutines. Output is bit-exact either way;
	// this only uses the host machine's cores for the real computation.
	Parallel bool
	// Slices splits each frame into independently decodable horizontal
	// slices (prediction isolation; separate arithmetic chunks). 0/1 =
	// whole-frame coding.
	Slices int
	// Observer, when non-nil, receives the framework's telemetry: metrics,
	// the JSONL event stream with per-frame balancer audits, and the
	// whole-run Perfetto timeline. nil (the default) disables every hook.
	Observer *Observer
	// SessionLabel names this run's tenant lane when several sessions share
	// one Observer: every event, metric sample and trace slice carries it
	// as the session label, and the Perfetto timeline shows one process
	// lane per label. Empty leaves a standalone run unscoped; pool sessions
	// default to "session-<lease id>".
	SessionLabel string
	// CheckSchedules runs the schedule invariant checker on every executed
	// inter-frame: Algorithm 2's distribution constraints (row sums,
	// non-negativity, placement rules), the data-access consistency of the
	// Δ/σ transfer vectors, and the τ1/τ2/τtot dependency ordering of the
	// executed timeline. A violation fails the frame with a detailed error
	// listing every broken invariant. Off (the default) costs nothing.
	CheckSchedules bool
	// DeadlineSlack arms autonomous failover: every inter-frame must meet
	// per-sync-point deadlines of the LP-predicted timeline times this
	// factor (e.g. 3 = three times the predicted τ1/τ2/τtot). A blown
	// deadline degrades the blamed device, a repeat excludes it — the
	// balancer then re-solves without it, its model samples are
	// quarantined, and the frame is retried bit-exactly on the reduced
	// platform. 0 (the default) disables enforcement entirely; schedules
	// are then byte-identical to earlier releases. Exclusion events are
	// visible through the Observer (feves_device_excluded_total).
	DeadlineSlack float64
	// MaxFrameRetries bounds the failover attempts per frame (0 → default
	// 3: first strike, exclusion strike, reduced-platform re-run).
	MaxFrameRetries int
	// FrameParallel keeps two inter frames in flight at once over dual
	// reference chains: odd inter frames predict from the odd chain, even
	// from the even chain, so consecutive frames have no data dependency
	// and their schedules interleave on the shared devices. The bitstream
	// is bit-exact with a serial two-chain encode of the same sequence
	// (and therefore differs from single-chain output — each chain's
	// reference list ramps at half rate). Intra frames and the
	// initialization frames still run serially.
	FrameParallel bool
}

// BalancerKind selects a load-balancing strategy.
type BalancerKind int

const (
	// BalancerLP is the paper's Algorithm 2 (default).
	BalancerLP BalancerKind = iota
	// BalancerEquidistant is the static even split of multi-GPU prior work.
	BalancerEquidistant
	// BalancerProportional splits rows by observed device speed without
	// modelling transfers or overlap.
	BalancerProportional
	// BalancerLPNoReuse is the LP balancer with the Data Access
	// Management's reuse optimization disabled (every accelerator fetches
	// its full SME inputs) — the A2 data-reuse ablation baseline.
	BalancerLPNoReuse
	// BalancerMEOffload reproduces the single-module-offload prior work of
	// the paper's §II ([5], [6]): ME on one GPU, everything else on the
	// CPU cores. Requires a platform with at least one GPU and one core.
	BalancerMEOffload
)

func (b BalancerKind) build(hysteresis float64) sched.Balancer {
	switch b {
	case BalancerEquidistant:
		return sched.EquidistantBalancer{}
	case BalancerProportional:
		return sched.ProportionalBalancer{}
	case BalancerLPNoReuse:
		return &sched.LPBalancer{NoReuse: true, Hysteresis: hysteresis}
	case BalancerMEOffload:
		return sched.MEOffloadBalancer{}
	default:
		return &sched.LPBalancer{Hysteresis: hysteresis}
	}
}

func (c Config) withDefaults() Config {
	if c.SearchArea == 0 {
		c.SearchArea = 32
	}
	if c.RefFrames == 0 {
		c.RefFrames = 1
	}
	if c.IQP == 0 {
		c.IQP = 27
	}
	if c.PQP == 0 {
		c.PQP = 28
	}
	return c
}

func (c Config) codecConfig() (codec.Config, error) {
	mode := codec.EntropyVLC
	if c.ArithmeticCoding {
		mode = codec.EntropyArith
	}
	chains := c.chains()
	var algo me.Algorithm
	switch c.FastME {
	case "", "full-search":
		algo = me.FullSearch
	case "three-step":
		algo = me.ThreeStep
	case "diamond":
		algo = me.Diamond
	default:
		return codec.Config{}, fmt.Errorf("feves: unknown ME algorithm %q", c.FastME)
	}
	return codec.Config{
		Width: c.Width, Height: c.Height,
		SearchRange: c.SearchArea / 2,
		NumRF:       c.RefFrames,
		IQP:         c.IQP, PQP: c.PQP,
		Entropy:            mode,
		IntraPeriod:        c.IntraPeriod,
		MEAlgo:             algo,
		TargetBitsPerFrame: c.TargetBitsPerFrame,
		Checksum:           c.Checksum,
		SceneCutThreshold:  c.SceneCutThreshold,
		Slices:             c.Slices,
		Chains:             chains,
	}, nil
}

func (c Config) chains() int {
	if c.FrameParallel {
		return 2
	}
	return 1
}

// Platform is a heterogeneous system description.
type Platform struct {
	inner *device.Platform
}

// Name returns the platform's label.
func (p *Platform) Name() string { return p.inner.Name }

// Devices returns the device names in scheduling order (GPUs first).
func (p *Platform) Devices() []string {
	out := make([]string, p.inner.NumDevices())
	for i := range out {
		out[i] = p.inner.Dev(i).Name
	}
	return out
}

// Perturb installs a load-perturbation schedule: factor(frame, device) > 1
// slows the device's kernels for that inter-frame (Fig. 7's non-dedicated
// system events). A nil function removes perturbations.
func (p *Platform) Perturb(factor func(frame, deviceIndex int) float64) {
	p.inner.Perturb = factor
}

// InjectFaults installs a deterministic fault schedule from a spec string
// (see the fault-spec grammar: "die:DEV@F", "stall:DEV@F[+K]",
// "slow:DEV@FxR[+K]", "chaos:SEEDxRATE", ";"-separated). Faults replay
// identically for a given spec and platform seed. An empty spec removes
// injection. Pair with Config.DeadlineSlack to exercise the failover
// path; without it, faults slow frames down but nothing is excluded.
func (p *Platform) InjectFaults(spec string) error {
	if spec == "" {
		p.inner.Faults = nil
		return nil
	}
	fp, err := device.ParseFaults(spec, p.inner)
	if err != nil {
		return err
	}
	p.inner.Faults = fp
	return nil
}

// The paper's platforms.

// SysNF is a quad-core Nehalem CPU plus one Fermi GPU.
func SysNF() *Platform { return &Platform{device.SysNF()} }

// SysNFF is a quad-core Nehalem CPU plus two Fermi GPUs.
func SysNFF() *Platform { return &Platform{device.SysNFF()} }

// SysHK is a quad-core Haswell CPU plus one Kepler GPU.
func SysHK() *Platform { return &Platform{device.SysHK()} }

// SysNFK is a quad-core Nehalem CPU plus one Fermi and one Kepler GPU —
// the serving experiments' pool platform (six devices: two fast GPUs to
// lease out plus four cores to split among tenants).
func SysNFK() *Platform {
	return &Platform{&device.Platform{Name: "SysNFK",
		GPUs:    []device.Profile{device.GPUFermi(), device.GPUKepler()},
		CPUCore: device.CPUNehalemCore(), Cores: 4, Seed: 1}}
}

// CPUNehalem is the quad-core CPU_N baseline.
func CPUNehalem() *Platform {
	return &Platform{device.CPUOnly("CPU_N", device.CPUNehalemCore(), 4)}
}

// CPUHaswell is the quad-core CPU_H baseline.
func CPUHaswell() *Platform {
	return &Platform{device.CPUOnly("CPU_H", device.CPUHaswellCore(), 4)}
}

// GPUFermi is the single-GPU GPU_F baseline.
func GPUFermi() *Platform { return &Platform{device.GPUOnly("GPU_F", device.GPUFermi())} }

// GPUKepler is the single-GPU GPU_K baseline.
func GPUKepler() *Platform { return &Platform{device.GPUOnly("GPU_K", device.GPUKepler())} }

// GPUTesla is a Tesla-generation single-GPU platform — the oldest
// architecture generation the paper's module library targets.
func GPUTesla() *Platform { return &Platform{device.GPUOnly("GPU_T", device.GPUTesla())} }

// PaperAnchored returns a copy of the platform with the kernel
// calibration undone on every device, restoring the Fig. 6 base profiles
// the paper's published rates were anchored to. The regular constructors
// model the current (restructured, faster) kernels; paper-figure
// reproductions use this to compare against the published absolute
// numbers.
func (p *Platform) PaperAnchored() *Platform {
	return &Platform{p.inner.Uncalibrated(device.DefaultCalibration())}
}

// CustomDualCopySysHK is SysHK with the Kepler GPU given two copy engines,
// so host→device and device→host transfers overlap (the §III-B dual-copy
// configuration; used by the A2 ablation).
func CustomDualCopySysHK() (*Platform, error) {
	pl := &device.Platform{
		Name:    "SysHK-2ce",
		GPUs:    []device.Profile{device.GPUKepler().WithCopyEngines(2)},
		CPUCore: device.CPUHaswellCore(),
		Cores:   4,
		Seed:    1,
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return &Platform{pl}, nil
}

// CustomPlatform assembles a platform from scaled copies of the reference
// devices: gpuSpeed scales GPU_F (2 ≈ twice as fast) per listed GPU, and
// cores CPU cores scaled from CPU_N by cpuSpeed. Use it to model machines
// the paper did not test.
func CustomPlatform(name string, gpuSpeeds []float64, cores int, cpuSpeed float64) (*Platform, error) {
	pl := &device.Platform{Name: name, Seed: 1}
	for i, s := range gpuSpeeds {
		if s <= 0 {
			return nil, fmt.Errorf("feves: GPU speed %v must be positive", s)
		}
		pl.GPUs = append(pl.GPUs, device.GPUFermi().Scaled(1/s, fmt.Sprintf("%s-gpu%d", name, i)))
	}
	if cores > 0 {
		if cpuSpeed <= 0 {
			return nil, fmt.Errorf("feves: CPU speed %v must be positive", cpuSpeed)
		}
		pl.CPUCore = device.CPUNehalemCore().Scaled(1/cpuSpeed, name+"-core")
		pl.Cores = cores
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return &Platform{pl}, nil
}

// FrameReport is the outcome of one frame.
type FrameReport struct {
	Frame int
	Intra bool
	// Attempt is the successful failover attempt index (0 = first try).
	Attempt int
	// Chain is the reference chain the frame predicted from (always 0
	// without FrameParallel).
	Chain int
	// PairSeconds is the simulated makespan of the two-frame group this
	// frame ran in (0 when the frame ran serially): frame-parallel
	// throughput is 2 frames per PairSeconds, which is what FPS reports
	// for paired frames.
	PairSeconds float64
	// Seconds is the simulated inter-loop time (τtot); 0 for intra frames.
	Seconds float64
	// Tau1 and Tau2 are the simulated synchronization points.
	Tau1, Tau2 float64
	// FPS is 1/Seconds.
	FPS float64
	// SchedOverhead is the real wall-clock cost of the balancing decision.
	SchedOverhead time.Duration
	// MERows etc. report the row distribution per device.
	MERows, INTRows, SMERows []int
	// RStarDevice is the index of the device that ran MC+TQ+TQ⁻¹+DBL.
	RStarDevice int
	// PredictedSeconds is the LP's τtot prediction for this frame (0 for
	// non-LP balancers and the equidistant initialization frame): the gap
	// to Seconds measures the performance model's accuracy.
	PredictedSeconds float64
	// Bits and PSNRY are the functional coding results (0 in simulation).
	Bits  int
	PSNRY float64
	// MESeconds..RStarSeconds are the summed device-time of each module
	// group during this frame (the §II module-share breakdown).
	MESeconds, INTSeconds, SMESeconds, RStarSeconds float64
}

func report(r core.Result) FrameReport {
	fr := FrameReport{
		Frame: r.FrameIndex,
		// Intra is set when the framework scheduled an intra frame (first
		// frame, IDR period) or when the encoder's scene-cut detector
		// switched to intra coding mid-pipeline.
		Intra:         r.Intra || r.Stats.Intra,
		Attempt:       r.Attempt,
		Chain:         r.Timing.Chain,
		PairSeconds:   r.Timing.PairMakespan,
		Seconds:       r.Timing.Tot,
		Tau1:          r.Timing.Tau1,
		Tau2:          r.Timing.Tau2,
		SchedOverhead: r.SchedOverhead,
		// The distribution slices alias balancer-owned storage that is
		// recycled a frame later; reports are long-lived API values, so
		// copy them.
		MERows:           append([]int(nil), r.Distribution.M...),
		INTRows:          append([]int(nil), r.Distribution.L...),
		SMERows:          append([]int(nil), r.Distribution.S...),
		RStarDevice:      r.Distribution.RStarDev,
		PredictedSeconds: r.Distribution.PredTot,
		Bits:             r.Stats.Bits,
		PSNRY:            r.Stats.PSNRY,
		MESeconds:        r.Timing.ModuleTime[sched.ModME],
		INTSeconds:       r.Timing.ModuleTime[sched.ModINT],
		SMESeconds:       r.Timing.ModuleTime[sched.ModSME],
		RStarSeconds:     r.Timing.ModuleTime[sched.ModRStar],
	}
	if fr.PairSeconds > 0 {
		fr.FPS = 2 / fr.PairSeconds
	} else if fr.Seconds > 0 {
		fr.FPS = 1 / fr.Seconds
	}
	return fr
}

// Encoder encodes a real video sequence collaboratively (Functional mode).
type Encoder struct {
	fw  *core.Framework
	cfg Config
}

// NewEncoder creates a functional encoder on the given platform.
func NewEncoder(cfg Config, pl *Platform) (*Encoder, error) {
	cfg = cfg.withDefaults()
	cc, err := cfg.codecConfig()
	if err != nil {
		return nil, err
	}
	fw, err := core.New(core.Options{
		Platform:        pl.inner,
		Codec:           cc,
		Mode:            vcm.Functional,
		Balancer:        cfg.Balancer.build(cfg.BalancerHysteresis),
		Alpha:           cfg.Alpha,
		Parallel:        cfg.Parallel,
		Telemetry:       cfg.Observer.Sink().ForSession(cfg.SessionLabel),
		CheckSchedules:  cfg.CheckSchedules,
		DeadlineSlack:   cfg.DeadlineSlack,
		MaxFrameRetries: cfg.MaxFrameRetries,
		FrameParallel:   cfg.FrameParallel,
	})
	if err != nil {
		return nil, err
	}
	return &Encoder{fw: fw, cfg: cfg}, nil
}

// EncodeYUV encodes the next frame given as packed planar I420 bytes
// (Y, Cb, Cr) of the configured dimensions.
func (e *Encoder) EncodeYUV(yuv []byte) (FrameReport, error) {
	f := h264.NewFrame(e.cfg.Width, e.cfg.Height)
	f.Poc = e.fw.FramesProcessed()
	if err := f.LoadYUV(yuv); err != nil {
		return FrameReport{}, err
	}
	r, err := e.fw.EncodeNext(f)
	if err != nil {
		return FrameReport{}, err
	}
	return report(r), nil
}

// EncodeYUVPair offers the next two frames for joint frame-parallel
// encoding. It returns one report per frame actually consumed: two when
// the frames ran as a pair, one when the framework fell back to serial
// encoding of the first frame (frame-parallel off, an intra boundary, the
// model still initializing, or a scene cut inside the pair) — the caller
// then re-offers the second frame's bytes. yuvB may be nil at end of
// stream, which encodes yuvA serially.
func (e *Encoder) EncodeYUVPair(yuvA, yuvB []byte) ([]FrameReport, error) {
	fA := h264.NewFrame(e.cfg.Width, e.cfg.Height)
	fA.Poc = e.fw.FramesProcessed()
	if err := fA.LoadYUV(yuvA); err != nil {
		return nil, err
	}
	var fB *h264.Frame
	if yuvB != nil {
		fB = h264.NewFrame(e.cfg.Width, e.cfg.Height)
		fB.Poc = fA.Poc + 1
		if err := fB.LoadYUV(yuvB); err != nil {
			return nil, err
		}
	}
	ra, rb, paired, err := e.fw.EncodePair(fA, fB)
	if err != nil {
		return nil, err
	}
	if paired {
		return []FrameReport{report(ra), report(rb)}, nil
	}
	return []FrameReport{report(ra)}, nil
}

// Bitstream returns the coded stream so far.
func (e *Encoder) Bitstream() []byte { return e.fw.Bitstream() }

// Verify decodes a bitstream produced by an Encoder and returns the number
// of frames it contains, erroring on any corruption — the end-to-end check
// that collaborative encoding preserved correctness.
func Verify(stream []byte) (frames int, err error) {
	frames, _, err = decodeAll(stream, false)
	return frames, err
}

// VerifyConcealing decodes a (possibly damaged) sliced arithmetic stream
// with error concealment: corrupt slice chunks degrade only their own rows
// instead of failing the stream. It returns the frame count and the number
// of slices that had to be concealed.
func VerifyConcealing(stream []byte) (frames, concealedSlices int, err error) {
	return decodeAll(stream, true)
}

func decodeAll(stream []byte, conceal bool) (frames, concealed int, err error) {
	dec, err := codec.NewDecoder(stream)
	if err != nil {
		return 0, 0, err
	}
	dec.Conceal = conceal
	for {
		_, err := dec.DecodeFrame()
		if errors.Is(err, io.EOF) {
			return frames, dec.ConcealedSlices(), nil
		}
		if err != nil {
			return frames, dec.ConcealedSlices(), err
		}
		frames++
	}
}

// Simulation runs the framework in timing-only mode.
type Simulation struct {
	fw *core.Framework
	// buffered holds the second report of a frame-parallel pair until the
	// next Step call, so Step keeps its one-report-per-frame contract.
	buffered *FrameReport
}

// NewSimulation creates a timing-only framework, typically at 1080p, to
// reproduce the paper's performance experiments.
func NewSimulation(cfg Config, pl *Platform) (*Simulation, error) {
	cfg = cfg.withDefaults()
	cc, err := cfg.codecConfig()
	if err != nil {
		return nil, err
	}
	fw, err := core.New(core.Options{
		Platform:        pl.inner,
		Codec:           cc,
		Mode:            vcm.TimingOnly,
		Balancer:        cfg.Balancer.build(cfg.BalancerHysteresis),
		Alpha:           cfg.Alpha,
		Telemetry:       cfg.Observer.Sink().ForSession(cfg.SessionLabel),
		CheckSchedules:  cfg.CheckSchedules,
		DeadlineSlack:   cfg.DeadlineSlack,
		MaxFrameRetries: cfg.MaxFrameRetries,
		FrameParallel:   cfg.FrameParallel,
	})
	if err != nil {
		return nil, err
	}
	return &Simulation{fw: fw}, nil
}

// Step simulates the next frame. With Config.FrameParallel the framework
// advances two frames per joint schedule; Step still returns one report
// per call, buffering the pair's second report for the next call.
func (s *Simulation) Step() (FrameReport, error) {
	if s.buffered != nil {
		fr := *s.buffered
		s.buffered = nil
		return fr, nil
	}
	ra, rb, paired, err := s.fw.EncodePair(nil, nil)
	if err != nil {
		return FrameReport{}, err
	}
	if paired {
		frB := report(rb)
		s.buffered = &frB
	}
	return report(ra), nil
}

// Run simulates n frames (including the initial intra frame) and returns
// their reports.
func (s *Simulation) Run(n int) ([]FrameReport, error) {
	out := make([]FrameReport, 0, n)
	for i := 0; i < n; i++ {
		r, err := s.Step()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SteadyFPS simulates frames until the encoding rate stabilizes and
// returns the steady-state frames per second — the quantity plotted in
// Fig. 6 of the paper.
func SteadyFPS(cfg Config, pl *Platform) (float64, error) {
	sim, err := NewSimulation(cfg, pl)
	if err != nil {
		return 0, err
	}
	// One intra frame, then enough inter-frames to pass the RF ramp-up and
	// let the characterization converge. Frame-parallel runs ramp each
	// reference chain at half rate and only start pairing once the model
	// is characterized, so their window is twice as long.
	n := cfg.withDefaults().RefFrames + 8
	if cfg.FrameParallel {
		n = 2*cfg.withDefaults().RefFrames + 24
	}
	reports, err := sim.Run(n + 1)
	if err != nil {
		return 0, err
	}
	last := reports[len(reports)-1]
	return last.FPS, nil
}
