// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`). Each benchmark iteration
// re-executes the full experiment through the public API; the printed
// series/rows themselves come from cmd/feves-bench, which shares the same
// harness (internal/bench).
package feves_test

import (
	"testing"

	"feves"
	"feves/internal/bench"
	"feves/internal/video"
)

// BenchmarkFig6a regenerates Fig. 6(a): fps vs search-area size for the
// four single devices and three heterogeneous systems (experiment E1).
func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.Fig6a(); len(s) != 7 {
			b.Fatal("unexpected series count")
		}
	}
}

// BenchmarkFig6b regenerates Fig. 6(b): fps vs number of reference frames
// (experiment E2).
func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.Fig6b(); len(s) != 7 {
			b.Fatal("unexpected series count")
		}
	}
}

// BenchmarkFig7a regenerates Fig. 7(a): per-frame adaptive balancing on
// SysHK at SA 64×64 (experiment E3).
func BenchmarkFig7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.Fig7a(); len(s) != 2 {
			b.Fatal("unexpected series count")
		}
	}
}

// BenchmarkFig7b regenerates Fig. 7(b): per-frame balancing with DPB
// ramp-up and injected load events (experiment E4).
func BenchmarkFig7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := bench.Fig7b(); len(s) != 5 {
			b.Fatal("unexpected series count")
		}
	}
}

// BenchmarkSpeedups regenerates the §IV headline speedup comparisons
// (experiment E5).
func BenchmarkSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.Speedups(); len(t.Rows) != 5 {
			b.Fatal("unexpected table")
		}
	}
}

// BenchmarkSchedulingOverhead regenerates the §IV scheduling-overhead
// measurement (experiment E6).
func BenchmarkSchedulingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.Overhead(); len(t.Rows) != 2 {
			b.Fatal("unexpected table")
		}
	}
}

// BenchmarkModuleShare regenerates the §II module-share analysis
// (experiment E7).
func BenchmarkModuleShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.ModuleShare(); len(t.Rows) != 4 {
			b.Fatal("unexpected table")
		}
	}
}

// BenchmarkBalancerAblation regenerates the A1 balancer comparison.
func BenchmarkBalancerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.AblationBalancers(); len(t.Rows) != 3 {
			b.Fatal("unexpected table")
		}
	}
}

// BenchmarkCopyEngines regenerates the A2 data-access ablation.
func BenchmarkCopyEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.AblationEngines(); len(t.Rows) != 3 {
			b.Fatal("unexpected table")
		}
	}
}

// BenchmarkSimulatedFrame measures the cost of simulating one balanced
// 1080p inter-frame (schedule build + LP + event simulation).
func BenchmarkSimulatedFrame(b *testing.B) {
	sim, err := feves.NewSimulation(feves.Config{Width: 1920, Height: 1088}, feves.SysHK())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.Run(3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalFrame measures a real collaboratively-encoded frame
// (all kernels computing) at a small resolution.
func BenchmarkFunctionalFrame(b *testing.B) {
	const w, h = 128, 96
	enc, err := feves.NewEncoder(feves.Config{Width: w, Height: h, SearchArea: 16}, feves.SysNF())
	if err != nil {
		b.Fatal(err)
	}
	src := video.NewSynthetic(w, h, 0, 5)
	if _, err := enc.EncodeYUV(src.FrameAt(0).PackedYUV()); err != nil {
		b.Fatal(err)
	}
	frames := make([][]byte, 8)
	for i := range frames {
		frames[i] = src.FrameAt(i + 1).PackedYUV()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeYUV(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadPredictability regenerates the A4 content-dependence
// measurement.
func BenchmarkWorkloadPredictability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.WorkloadPredictability(); len(t.Rows) != 3 {
			b.Fatal("unexpected table")
		}
	}
}

// BenchmarkPredictionAccuracy regenerates the A3 characterization-accuracy
// measurement.
func BenchmarkPredictionAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := bench.PredictionAccuracy(); len(t.Rows) != 3 {
			b.Fatal("unexpected table")
		}
	}
}
