package feves_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"feves"
	"feves/internal/core"
	"feves/internal/device"
	"feves/internal/h264"
	"feves/internal/h264/codec"
	"feves/internal/vcm"
	"feves/internal/video"
)

// synthYUV collects n packed I420 frames of the deterministic synthetic
// sequence for the given seed.
func synthYUV(t *testing.T, w, h, n int, seed uint64) [][]byte {
	t.Helper()
	src := video.NewSynthetic(w, h, n, seed)
	var out [][]byte
	for {
		frame, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, frame.PackedYUV())
	}
	return out
}

// fpEncode drives a frame-parallel encoder through the pair-offer
// protocol: offer two frames, consume one or two reports, re-offer the
// unconsumed frame. It returns the bitstream, every report in display
// order, and how many offers came back half-consumed (the serial
// fallbacks: initialization, end of stream, in-pair scene cuts).
func fpEncode(t *testing.T, cfg feves.Config, pl *feves.Platform, frames [][]byte) ([]byte, []feves.FrameReport, int) {
	t.Helper()
	cfg.FrameParallel = true
	enc, err := feves.NewEncoder(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	var (
		reports []feves.FrameReport
		single  int
	)
	for i := 0; i < len(frames); {
		var next []byte
		if i+1 < len(frames) {
			next = frames[i+1]
		}
		reps, err := enc.EncodeYUVPair(frames[i], next)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		reports = append(reports, reps...)
		if len(reps) == 1 {
			single++
		}
		i += len(reps)
	}
	return enc.Bitstream(), reports, single
}

// serialTwoChainStream encodes the same sequence through the internal
// framework with the two-chain codec but frame-parallel execution off:
// one frame in flight, references resolved over the same dual chains.
// This is the reference the pair path must match byte for byte.
func serialTwoChainStream(t *testing.T, cfg feves.Config, pl *device.Platform, frames [][]byte) []byte {
	t.Helper()
	w, h := cfg.Width, cfg.Height
	fw, err := core.New(core.Options{
		Platform: pl,
		Codec: codec.Config{
			Width: w, Height: h, SearchRange: 16, NumRF: cfg.RefFrames,
			IQP: 27, PQP: 28, Chains: 2,
			SceneCutThreshold: cfg.SceneCutThreshold,
		},
		Mode: vcm.Functional,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, yuv := range frames {
		cf := h264.NewFrame(w, h)
		cf.Poc = i
		if err := cf.LoadYUV(yuv); err != nil {
			t.Fatal(err)
		}
		if _, err := fw.EncodeNext(cf); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	return fw.Bitstream()
}

// TestFrameParallelBitExactSerialReference is the tentpole acceptance
// check: with two frames in flight, the coded stream must be
// byte-identical to a serial encode over the same dual reference chains —
// on both test platforms, with multiple reference frames, and with a
// meaningful share of the sequence actually running paired.
func TestFrameParallelBitExactSerialReference(t *testing.T) {
	const w, h, n = 320, 176, 18
	frames := synthYUV(t, w, h, n, 1)
	cfg := feves.Config{Width: w, Height: h, SearchArea: 32, RefFrames: 2}
	for _, tc := range []struct {
		name string
		pub  *feves.Platform
		intl *device.Platform
	}{
		{"SysHK", feves.SysHK(), device.SysHK()},
		{"SysNFF", feves.SysNFF(), device.SysNFF()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := serialTwoChainStream(t, cfg, tc.intl, frames)
			got, reports, _ := fpEncode(t, cfg, tc.pub, frames)
			if !bytes.Equal(got, want) {
				t.Fatalf("frame-parallel stream differs from serial two-chain reference (%d vs %d bytes)",
					len(got), len(want))
			}
			if fn, err := feves.Verify(got); err != nil || fn != n {
				t.Fatalf("stream does not decode: %d frames, %v", fn, err)
			}
			paired := 0
			for _, r := range reports {
				if r.PairSeconds > 0 {
					paired++
				}
			}
			if paired < n/2 {
				t.Fatalf("only %d of %d frames ran paired — the test is not exercising the pair path", paired, n)
			}
		})
	}
}

// TestFrameParallelFailoverBitExactOnGPUDeath extends the failover pin to
// two frames in flight: a GPU dying mid-pipeline aborts the whole pair
// before any payload runs, both frames replay on the reduced platform,
// and the stream stays byte-identical to a clean frame-parallel run.
func TestFrameParallelFailoverBitExactOnGPUDeath(t *testing.T) {
	const w, h, n = 320, 176, 14
	frames := synthYUV(t, w, h, n, 1)
	// SearchArea 64 for the same reason as failoverEncode: at SA 32 the
	// calibrated pair LP idles GPU_F, making its death undetectable.
	cfg := feves.Config{Width: w, Height: h, SearchArea: 64, RefFrames: 1}

	clean, _, _ := fpEncode(t, cfg, feves.SysNFK(), frames)
	if fn, err := feves.Verify(clean); err != nil || fn != n {
		t.Fatalf("clean stream: %d frames, %v", fn, err)
	}
	// Death at frame 6 lands on a pair's first slot, at frame 5 on the
	// second: a fault on frame B drags frame A past its budget on the
	// shared engines, so the blame must cross the pair (the B-slot case).
	for _, spec := range []string{"die:GPU_F@6", "die:GPU_K@6", "die:GPU_F@5"} {
		t.Run(spec, func(t *testing.T) {
			pl := feves.SysNFK()
			if err := pl.InjectFaults(spec); err != nil {
				t.Fatal(err)
			}
			fcfg := cfg
			fcfg.DeadlineSlack = 3
			stream, reports, _ := fpEncode(t, fcfg, pl, frames)
			if !bytes.Equal(stream, clean) {
				t.Fatalf("faulted frame-parallel stream differs from clean run (%d vs %d bytes)",
					len(stream), len(clean))
			}
			retried := 0
			for _, r := range reports {
				if r.Attempt > 0 {
					retried++
				}
			}
			if retried == 0 {
				t.Fatal("no report shows a retry attempt — the fault never tripped a pair deadline")
			}
		})
	}
}

// TestFrameParallelSceneCutBitExact splices two unrelated scenes so the
// adaptive IDR detector fires while a pair is in flight. Whichever slot
// the cut lands in — frame A (pair aborted, B re-offered) or frame B (IDR
// coded second) — the output must match the serial two-chain encode of
// the same spliced sequence, and the chain bookkeeping must survive the
// mid-stream flush.
func TestFrameParallelSceneCutBitExact(t *testing.T) {
	const w, h = 320, 176
	for _, splice := range []int{7, 8} {
		t.Run(fmt.Sprintf("cutAt%d", splice), func(t *testing.T) {
			frames := append(synthYUV(t, w, h, splice, 1), synthYUV(t, w, h, 16-splice, 977)...)
			cfg := feves.Config{Width: w, Height: h, SearchArea: 32, RefFrames: 1,
				SceneCutThreshold: 8}
			want := serialTwoChainStream(t, cfg, device.SysHK(), frames)
			got, reports, _ := fpEncode(t, cfg, feves.SysHK(), frames)
			if !bytes.Equal(got, want) {
				t.Fatalf("frame-parallel stream differs from serial reference across a scene cut (%d vs %d bytes)",
					len(got), len(want))
			}
			if fn, err := feves.Verify(got); err != nil || fn != len(frames) {
				t.Fatalf("stream does not decode: %d frames, %v", fn, err)
			}
			cut := false
			for _, r := range reports {
				if r.Frame == splice && r.Intra {
					cut = true
				}
			}
			if !cut {
				t.Fatalf("splice at frame %d did not code an IDR — threshold not exercising the cut path", splice)
			}
		})
	}
}

// TestFrameParallelReportShape pins the report contract of paired frames:
// the two frames of a pair run on opposite reference chains, each report
// carries the chain derived from its distance to the last IDR, paired
// frames expose the joint makespan with FPS accounted as two frames per
// pair interval, and serial-fallback frames leave PairSeconds zero.
func TestFrameParallelReportShape(t *testing.T) {
	const n = 24
	sim, err := feves.NewSimulation(feves.Config{
		Width: 1920, Height: 1088, SearchArea: 32, RefFrames: 2,
		FrameParallel: true,
	}, feves.SysHK())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := sim.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != n {
		t.Fatalf("got %d reports for %d frames", len(reports), n)
	}
	lastIntra, paired := 0, 0
	for i, r := range reports {
		if r.Frame != i {
			t.Fatalf("report %d is for frame %d — pair buffering broke display order", i, r.Frame)
		}
		if r.Intra {
			lastIntra = r.Frame
			continue
		}
		wantChain := (r.Frame - lastIntra - 1) % 2
		if r.Chain != wantChain {
			t.Errorf("frame %d: chain %d, want %d", r.Frame, r.Chain, wantChain)
		}
		if r.PairSeconds == 0 {
			continue // serial fallback during model initialization
		}
		paired++
		if r.PairSeconds < r.Seconds {
			t.Errorf("frame %d: pair makespan %v shorter than own τtot %v", r.Frame, r.PairSeconds, r.Seconds)
		}
		if want := 2 / r.PairSeconds; r.FPS != want {
			t.Errorf("frame %d: FPS %v, want 2/PairSeconds = %v", r.Frame, r.FPS, want)
		}
		if r.Attempt != 0 {
			t.Errorf("frame %d: attempt %d without any fault injected", r.Frame, r.Attempt)
		}
	}
	if paired < n/2 {
		t.Fatalf("only %d of %d frames paired in steady state", paired, n)
	}
	// Pairs straddle (even, odd) chain-offsets: consecutive paired reports
	// within one pair must sit on opposite chains.
	for i := 1; i < len(reports); i++ {
		a, b := reports[i-1], reports[i]
		if b.PairSeconds > 0 && a.PairSeconds > 0 && b.Frame == a.Frame+1 &&
			b.PairSeconds == a.PairSeconds && a.Chain == b.Chain {
			t.Errorf("frames %d and %d paired on the same chain %d", a.Frame, b.Frame, a.Chain)
		}
	}
}
