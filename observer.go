package feves

import (
	"fmt"
	"io"
	"sync"

	"feves/internal/telemetry"
)

// ObserverConfig selects which telemetry sinks an Observer drives. Any
// subset may be enabled; the metrics registry is always created so
// MetricsText works even without an HTTP endpoint.
type ObserverConfig struct {
	// MetricsAddr, when non-empty, serves the Prometheus text exposition
	// over HTTP at this address (host:port; ":0" picks a free port) under
	// /metrics.
	MetricsAddr string
	// Events, when non-nil, receives the structured event stream as JSONL:
	// frame_start/frame_end records with τ1/τ2/τtot, distribution vectors
	// and module times, balancer_audit records pairing the LP's predicted
	// τtot with the measured one (plus per-device model drift), and
	// idr/scene_cut marks.
	Events io.Writer
	// Perfetto, when non-nil, receives the whole run's schedule as Chrome
	// trace-event JSON (loadable in Perfetto / chrome://tracing) when the
	// Observer is closed.
	Perfetto io.Writer
	// TraceEventCap bounds the trace ring: when more events than this are
	// recorded the oldest are overwritten and
	// feves_trace_events_dropped_total counts the loss (0 → 65536). The
	// exported timeline is always the most recent window.
	TraceEventCap int
	// FlightFrames sizes the flight recorder's frame ring — the number of
	// recent frames whose full schedule (distribution vectors, predicted vs
	// measured τ, LP solver work, retries) a post-mortem bundle captures
	// (0 → 64). The recorder is always on; it allocates only at
	// construction and on bundle capture.
	FlightFrames int
}

// Observer collects a run's telemetry. Create one with NewObserver, set it
// on Config.Observer (one Observer may serve several encoders or
// simulations — metrics and the trace timeline then aggregate), and Close
// it when the run ends to flush the Perfetto trace and stop the metrics
// endpoint.
type Observer struct {
	tel *telemetry.Telemetry
	srv *telemetry.MetricsServer

	mu       sync.Mutex
	perfetto io.Writer
	closed   bool
}

// NewObserver builds an Observer from the config. The error is an address
// bind failure for MetricsAddr.
func NewObserver(oc ObserverConfig) (*Observer, error) {
	tel := &telemetry.Telemetry{
		Metrics: telemetry.NewRegistry(),
		Flight:  telemetry.NewFlightRecorder(oc.FlightFrames),
	}
	if oc.Events != nil {
		tel.Events = telemetry.NewEventLog(oc.Events)
	}
	if oc.Perfetto != nil {
		tel.Trace = telemetry.NewTraceWriterCap(oc.TraceEventCap)
	}
	o := &Observer{tel: tel, perfetto: oc.Perfetto}
	if oc.MetricsAddr != "" {
		srv, err := telemetry.Serve(oc.MetricsAddr, tel.Metrics)
		if err != nil {
			return nil, err
		}
		o.srv = srv
	}
	return o, nil
}

// Sink returns the underlying telemetry sink (nil on a nil Observer), for
// wiring internal components directly.
func (o *Observer) Sink() *telemetry.Telemetry {
	if o == nil {
		return nil
	}
	return o.tel
}

// MetricsAddr returns the bound address of the HTTP metrics endpoint, or
// "" when none was configured.
func (o *Observer) MetricsAddr() string {
	if o == nil || o.srv == nil {
		return ""
	}
	return o.srv.Addr()
}

// MetricsText returns the current Prometheus text exposition.
func (o *Observer) MetricsText() string {
	if o == nil {
		return ""
	}
	return o.tel.Metrics.Expose()
}

// ExportTrace snapshots the live trace ring as Chrome trace-event JSON
// without closing the Observer — the run keeps recording. It returns
// ErrNoTrace when the Observer was built without a Perfetto sink.
func (o *Observer) ExportTrace(w io.Writer) error {
	if o == nil || o.tel.Trace == nil {
		return ErrNoTrace
	}
	return o.tel.Trace.Export(w)
}

// ErrNoTrace is returned by ExportTrace when tracing is not enabled
// (ObserverConfig.Perfetto was nil).
var ErrNoTrace = fmt.Errorf("feves: observer has no trace writer (ObserverConfig.Perfetto is nil)")

// WriteFlight writes the flight recorder's live document — the recent
// frame ring, the incident ring, and every captured post-mortem bundle —
// as indented JSON. The recorder is always on, so this works on every
// Observer.
func (o *Observer) WriteFlight(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.tel.Flight.WriteDoc(w)
}

// FlightBundles returns the post-mortem bundles captured so far (device
// exclusions, blown deadlines, pool failovers), oldest first.
func (o *Observer) FlightBundles() []telemetry.Bundle {
	if o == nil {
		return nil
	}
	return o.tel.Flight.Bundles()
}

// Close flushes the Perfetto trace to the configured writer and shuts the
// metrics endpoint down. It is idempotent.
func (o *Observer) Close() error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return nil
	}
	o.closed = true
	var err error
	if o.perfetto != nil && o.tel.Trace != nil {
		if e := o.tel.Trace.Export(o.perfetto); e != nil {
			err = fmt.Errorf("feves: perfetto export: %w", e)
		}
	}
	if o.srv != nil {
		if e := o.srv.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}
